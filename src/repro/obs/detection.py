"""Detection-quality scoring: suspicion transitions vs chaos ground truth.

The φ-accrual detector (:mod:`repro.core.detector`) logs every
suspect/clear edge; the chaos engine (:mod:`repro.net.chaos`) logs the
ground-truth :class:`~repro.net.chaos.GrayFault` schedule of what it
actually degraded, when, and how hard.  This module joins the two — the
same predicted-vs-achieved discipline as the calibration tracker
(:mod:`repro.obs.calibration`) applies to ``P_c(d)``:

* **time-to-detect** — per detected fault, first suspicion time minus
  fault start (0 if the target was already suspected when the fault
  began);
* **missed-detection rate** — faults whose target was never suspected
  inside ``[start, end + grace]``;
* **false-positive rate** — suspect edges raised for a peer with no
  fault covering that instant (grace extends each fault window, since a
  suspicion raised moments after heal was honestly earned).

Only faults on *observable* targets are scored: a client detector only
hears from replicas it reads from or that broadcast to it, so callers
pass the serving-replica set and faults elsewhere are excluded rather
than counted as misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # circular at runtime: core.detector pulls in repro.core,
    # which imports the net layer, which imports repro.obs.metrics.
    from repro.core.detector import SuspicionTransition
    from repro.net.chaos import GrayFault


@dataclass(frozen=True)
class FaultDetection:
    """One ground-truth fault joined with the detector's verdict."""

    kind: str
    target: str
    start: float
    end: float
    severity: float
    detected_at: Optional[float]

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def time_to_detect(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return max(0.0, self.detected_at - self.start)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "severity": round(self.severity, 4),
            "detected_at": (
                None if self.detected_at is None
                else round(self.detected_at, 6)
            ),
            "time_to_detect": (
                None if self.time_to_detect is None
                else round(self.time_to_detect, 6)
            ),
        }


@dataclass
class DetectionReport:
    """The scorer's verdict over one campaign."""

    faults: list[FaultDetection] = field(default_factory=list)
    suspect_edges: int = 0
    false_positives: int = 0

    @property
    def detected(self) -> int:
        return sum(1 for f in self.faults if f.detected)

    @property
    def missed(self) -> int:
        return len(self.faults) - self.detected

    @property
    def missed_rate(self) -> float:
        if not self.faults:
            return 0.0
        return self.missed / len(self.faults)

    @property
    def false_positive_rate(self) -> float:
        """Fraction of suspect edges not attributable to any fault."""
        if self.suspect_edges == 0:
            return 0.0
        return self.false_positives / self.suspect_edges

    @property
    def mean_time_to_detect(self) -> Optional[float]:
        ttds = [
            f.time_to_detect for f in self.faults
            if f.time_to_detect is not None
        ]
        if not ttds:
            return None
        return sum(ttds) / len(ttds)

    def to_dict(self) -> dict:
        mean_ttd = self.mean_time_to_detect
        return {
            "faults": [f.to_dict() for f in self.faults],
            "fault_count": len(self.faults),
            "detected": self.detected,
            "missed": self.missed,
            "missed_rate": round(self.missed_rate, 4),
            "suspect_edges": self.suspect_edges,
            "false_positives": self.false_positives,
            "false_positive_rate": round(self.false_positive_rate, 4),
            "mean_time_to_detect": (
                None if mean_ttd is None else round(mean_ttd, 6)
            ),
        }


def score_detection(
    transitions: Iterable[SuspicionTransition],
    schedule: Iterable[GrayFault],
    observable: Optional[set[str]] = None,
    grace: float = 0.5,
) -> DetectionReport:
    """Join suspicion transitions against the ground-truth fault schedule.

    ``observable`` restricts scoring to faults on peers the detector
    could actually hear from; ``grace`` (seconds) extends each fault
    window when attributing suspicions and crediting detections (the
    evidence of a fault — a missing arrival — necessarily trails it).
    """
    if grace < 0:
        raise ValueError("grace must be non-negative")
    transitions = list(transitions)
    suspects = [t for t in transitions if t.suspected]
    faults = [
        f for f in schedule
        if observable is None or f.target in observable
    ]

    report = DetectionReport(suspect_edges=len(suspects))
    for fault in faults:
        detected_at = None
        for t in suspects:
            if t.peer != fault.target:
                continue
            if fault.start <= t.time <= fault.end + grace:
                detected_at = t.time
                break
        if detected_at is None and _still_suspected(
            transitions, fault.target, fault.start
        ):
            # Already suspected when the fault began (an earlier fault's
            # suspicion still latched counts as instantaneous detection).
            detected_at = fault.start
        report.faults.append(
            FaultDetection(
                fault.kind, fault.target, fault.start, fault.end,
                fault.severity, detected_at,
            )
        )

    for t in suspects:
        covered = any(
            f.target == t.peer and f.start <= t.time <= f.end + grace
            for f in faults
        )
        if not covered:
            report.false_positives += 1
    return report


def _still_suspected(
    transitions: list[SuspicionTransition], peer: str, at: float
) -> bool:
    """Whether the peer's latest edge strictly before ``at`` was a suspect."""
    state = False
    for t in transitions:
        if t.peer != peer or t.time >= at:
            continue
        state = t.suspected
    return state
