"""Unified telemetry layer: metrics, request spans, prediction calibration.

``repro.obs`` is the one place the rest of the codebase reports what it is
doing:

* :mod:`repro.obs.metrics` — counters / gauges / log-scale histograms with
  labels, a cheap no-op mode, and snapshot/diff/merge for multi-process
  experiment runs;
* :mod:`repro.obs.spans` — request-span tracing on top of
  :mod:`repro.sim.tracing`, reconstructing each read/update's life
  (selection, sequencing, deferral, retries, hedges) as one tree;
* :mod:`repro.obs.calibration` — reliability diagrams and Brier scores for
  predicted ``P_c(d)`` vs. observed deadline outcomes, per strategy;
* :mod:`repro.obs.export` — JSONL event streams and Prometheus-style text;
* :mod:`repro.obs.timeseries` — simulation-clock time series over registry
  snapshots: fixed-interval deltas, commutative cross-worker merge, and a
  compact binary codec;
* :mod:`repro.obs.slo` — declarative SLOs over timelines: rolling
  compliance, multi-window error-budget burn alerts, and the per-read
  staleness attribution summary.

See DESIGN.md §10 and §15 for the architecture.
"""

from repro.obs.calibration import CalibrationBucket, CalibrationTracker
from repro.obs.detection import (
    DetectionReport,
    FaultDetection,
    score_detection,
)
from repro.obs.export import (
    metrics_event,
    prometheus_text,
    prometheus_timeseries_text,
    summarize_histogram,
    write_jsonl,
)
from repro.obs.slo import (
    ATTRIBUTION_COMPONENTS,
    BurnAlert,
    SloEngine,
    SloReport,
    SloSpec,
    attribution_summary,
    parse_series,
)
from repro.obs.timeseries import (
    TIMELINE_CODEC_VERSION,
    Timeline,
    TimeseriesRecorder,
    decode_timeline,
    encode_timeline,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.obs.spans import (
    SPAN_CATEGORY,
    Span,
    build_span_trees,
    emit_span,
    request_id_of,
    span_root,
)

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "BurnAlert",
    "CalibrationBucket",
    "CalibrationTracker",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DetectionReport",
    "FaultDetection",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "SPAN_CATEGORY",
    "SloEngine",
    "SloReport",
    "SloSpec",
    "Span",
    "TIMELINE_CODEC_VERSION",
    "Timeline",
    "TimeseriesRecorder",
    "attribution_summary",
    "build_span_trees",
    "decode_timeline",
    "emit_span",
    "encode_timeline",
    "metrics_event",
    "parse_series",
    "prometheus_text",
    "prometheus_timeseries_text",
    "request_id_of",
    "span_root",
    "score_detection",
    "summarize_histogram",
    "write_jsonl",
]
