"""Exporters for metric snapshots: JSONL event streams and Prometheus text.

Both formats work on the plain-dict snapshots produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, so they can run in the
parent process on merged worker data without ever seeing a live registry.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

__all__ = [
    "prometheus_text",
    "prometheus_timeseries_text",
    "metrics_event",
    "write_jsonl",
    "summarize_histogram",
]

_SERIES_RE = re.compile(r"^(?P<name>[^{]+)(\{(?P<labels>.*)\})?$")


def _split_series(series: str) -> tuple[str, str]:
    """Split ``name{k="v"}`` into (name, label part incl. braces or '')."""
    match = _SERIES_RE.match(series)
    if match is None:  # defensive; registry only emits well-formed series
        return series, ""
    labels = match.group("labels")
    return match.group("name"), (f"{{{labels}}}" if labels else "")


def _merge_labels(label_part: str, extra: str) -> str:
    """Splice ``extra`` (e.g. 'le="0.1"') into an existing label part."""
    if not label_part:
        return f"{{{extra}}}"
    return label_part[:-1] + "," + extra + "}"


def prometheus_text(snapshot: Dict[str, dict]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Histograms expand to cumulative ``_bucket`` samples plus ``_sum`` and
    ``_count``, matching what a scrape endpoint would serve.
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for series in sorted(snapshot):
        entry = snapshot[series]
        name, label_part = _split_series(series)
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {entry['type']}")
        if entry["type"] == "histogram":
            cumulative = 0
            for boundary, count in zip(entry["boundaries"], entry["counts"]):
                cumulative += count
                le = _merge_labels(label_part, f'le="{boundary:g}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            le = _merge_labels(label_part, 'le="+Inf"')
            lines.append(f"{name}_bucket{le} {entry['count']}")
            lines.append(f"{name}_sum{label_part} {entry['sum']:g}")
            lines.append(f"{name}_count{label_part} {entry['count']}")
        else:
            value = entry["value"]
            text = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name}{label_part} {text}")
    return "\n".join(lines) + "\n"


def prometheus_timeseries_text(timeline, window: int = 1) -> str:
    """Render a :class:`repro.obs.timeseries.Timeline`'s most recent state
    as Prometheus gauges.

    A scrape endpoint can only serve *current* values, so each series
    collapses to its last ``window`` ticks: counters become ``<name>_rate``
    (per-second over the window), gauges become ``<name>_last``, and
    histograms become ``<name>_p50``/``_p95``/``_p99`` plus ``<name>_rate``
    (observations per second).  Labels are preserved verbatim.
    """
    if timeline is None or timeline.length == 0:
        return ""
    window = max(1, min(window, timeline.length))
    lo = timeline.length - window
    hi = timeline.length
    span = window * timeline.interval
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} gauge")

    for series in sorted(timeline.series):
        entry = timeline.series[series]
        name, label_part = _split_series(series)
        if entry["type"] == "counter":
            rate = sum(entry["deltas"][lo:hi]) / span
            type_line(f"{name}_rate")
            lines.append(f"{name}_rate{label_part} {rate:g}")
        elif entry["type"] == "gauge":
            present = [
                v for v in entry["values"][lo:hi] if v is not None
            ]
            if not present:
                continue
            type_line(f"{name}_last")
            lines.append(f"{name}_last{label_part} {present[-1]:g}")
        else:  # histogram
            for q, suffix in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                ticks = timeline.quantiles(series, q)[lo:hi]
                quantile = ticks[-1] if ticks else 0.0
                type_line(f"{name}_{suffix}")
                lines.append(f"{name}_{suffix}{label_part} {quantile:g}")
            rate = sum(entry["totals"][lo:hi]) / span
            type_line(f"{name}_rate")
            lines.append(f"{name}_rate{label_part} {rate:g}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def metrics_event(
    snapshot: Dict[str, dict],
    kind: str = "snapshot",
    time: Optional[float] = None,
    **extra,
) -> dict:
    """Wrap a snapshot as one JSONL event record."""
    event: dict = {"event": kind}
    if time is not None:
        event["time"] = time
    event.update(extra)
    event["metrics"] = snapshot
    return event


def write_jsonl(path: Union[str, Path], records: Iterable[dict]) -> Path:
    """Write records one-JSON-object-per-line; returns the resolved path."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str))
            handle.write("\n")
    return path


def summarize_histogram(entry: dict) -> dict:
    """Compact (count, mean, p50, p95, p99) view of one histogram entry."""
    count = entry["count"]
    if not count:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    boundaries = entry["boundaries"]
    counts = entry["counts"]

    def quantile(q: float) -> float:
        target = q * count
        seen = 0
        for i, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                return boundaries[min(i, len(boundaries) - 1)] if boundaries else 0.0
        return boundaries[-1] if boundaries else 0.0

    return {
        "count": count,
        "mean": entry["sum"] / count,
        "p50": quantile(0.50),
        "p95": quantile(0.95),
        "p99": quantile(0.99),
    }
