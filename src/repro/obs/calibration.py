"""Prediction-calibration tracking: predicted ``P_c(d)`` vs. observed outcomes.

Algorithm 1 selects replicas so that the *predicted* probability of meeting
the deadline exceeds the client's ``P_c``.  Whether those predictions are
honest is an empirical question (PBS and OptCon both make the measured
probability surface the headline artifact), so the tracker pairs every
judged read with the probability the model assigned to the selected replica
set, and reports:

* a **reliability diagram** — uniform probability buckets with the mean
  predicted value, the observed timely frequency, and a Wilson confidence
  interval on the observation, per replica-selection strategy;
* the **Brier score** (mean squared error of the probabilistic forecast);
  0 is a perfect forecaster, 0.25 is what "always predict 0.5" scores.

A bucket is *consistent* when the mean prediction falls inside the Wilson
interval of the observed frequency.  Trackers serialize to plain dicts
(:meth:`to_dict`) so the parallel runner can merge per-worker results
exactly like metric snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.stats.confidence import wilson_interval

__all__ = ["CalibrationBucket", "CalibrationTracker"]

DEFAULT_BUCKETS = 10


@dataclass(frozen=True)
class CalibrationBucket:
    """One reliability-diagram row for one strategy."""

    low: float
    high: float
    count: int
    timely: int
    mean_predicted: float
    observed: float
    ci_low: float
    ci_high: float
    consistent: bool


class CalibrationTracker:
    """Accumulates (predicted, outcome) pairs per selection strategy."""

    def __init__(self, buckets: int = DEFAULT_BUCKETS) -> None:
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets!r}")
        self.buckets = buckets
        # strategy -> {"count": [..], "timely": [..], "predicted_sum": [..],
        #              "brier_sum": float, "observations": int}
        self._data: Dict[str, dict] = {}

    def _strategy(self, name: str) -> dict:
        entry = self._data.get(name)
        if entry is None:
            entry = self._data[name] = {
                "count": [0] * self.buckets,
                "timely": [0] * self.buckets,
                "predicted_sum": [0.0] * self.buckets,
                "brier_sum": 0.0,
                "observations": 0,
            }
        return entry

    def observe(self, strategy: str, predicted: float, timely: bool) -> None:
        """Record one judged read.

        ``predicted`` is the model's probability that the selected replica
        set meets the deadline; ``timely`` is what actually happened.
        """
        predicted = min(1.0, max(0.0, predicted))
        index = min(int(predicted * self.buckets), self.buckets - 1)
        entry = self._strategy(strategy)
        entry["count"][index] += 1
        entry["predicted_sum"][index] += predicted
        if timely:
            entry["timely"][index] += 1
        outcome = 1.0 if timely else 0.0
        entry["brier_sum"] += (predicted - outcome) ** 2
        entry["observations"] += 1

    # -- reporting ------------------------------------------------------------

    def strategies(self) -> List[str]:
        return sorted(self._data)

    def observations(self, strategy: str) -> int:
        entry = self._data.get(strategy)
        return entry["observations"] if entry else 0

    def brier_score(self, strategy: str) -> float:
        entry = self._data.get(strategy)
        if not entry or not entry["observations"]:
            return 0.0
        return entry["brier_sum"] / entry["observations"]

    def reliability(
        self, strategy: str, level: float = 0.95
    ) -> List[CalibrationBucket]:
        """Populated reliability-diagram rows for one strategy."""
        entry = self._data.get(strategy)
        if entry is None:
            return []
        rows: List[CalibrationBucket] = []
        width = 1.0 / self.buckets
        for i in range(self.buckets):
            count = entry["count"][i]
            if not count:
                continue
            timely = entry["timely"][i]
            mean_predicted = entry["predicted_sum"][i] / count
            observed = timely / count
            ci_low, ci_high = wilson_interval(timely, count, level)
            rows.append(
                CalibrationBucket(
                    low=i * width,
                    high=(i + 1) * width,
                    count=count,
                    timely=timely,
                    mean_predicted=mean_predicted,
                    observed=observed,
                    ci_low=ci_low,
                    ci_high=ci_high,
                    consistent=ci_low <= mean_predicted <= ci_high,
                )
            )
        return rows

    def well_calibrated(
        self, strategy: str, min_count: int = 10, level: float = 0.95
    ) -> bool:
        """True when every bucket with >= ``min_count`` samples is consistent.

        Sparse buckets are excluded: a 3-sample Wilson interval spans most of
        [0, 1] and would pass vacuously anyway, but the acceptance check
        should rest on buckets with real mass.
        """
        rows = [r for r in self.reliability(strategy, level) if r.count >= min_count]
        return bool(rows) and all(r.consistent for r in rows)

    # -- serialization / merge ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "buckets": self.buckets,
            "strategies": {
                name: {
                    "count": list(entry["count"]),
                    "timely": list(entry["timely"]),
                    "predicted_sum": list(entry["predicted_sum"]),
                    "brier_sum": entry["brier_sum"],
                    "observations": entry["observations"],
                }
                for name, entry in self._data.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationTracker":
        tracker = cls(buckets=payload["buckets"])
        for name, entry in payload["strategies"].items():
            tracker._data[name] = {
                "count": list(entry["count"]),
                "timely": list(entry["timely"]),
                "predicted_sum": list(entry["predicted_sum"]),
                "brier_sum": entry["brier_sum"],
                "observations": entry["observations"],
            }
        return tracker

    @classmethod
    def merge(cls, payloads: Iterable[Optional[dict]]) -> "CalibrationTracker":
        """Fold serialized trackers; ``None`` entries are skipped."""
        merged: Optional[CalibrationTracker] = None
        for payload in payloads:
            if payload is None:
                continue
            if merged is None:
                merged = cls.from_dict(payload)
                continue
            if payload["buckets"] != merged.buckets:
                raise ValueError(
                    "cannot merge calibration trackers with different "
                    f"bucket counts: {payload['buckets']} vs {merged.buckets}"
                )
            for name, entry in payload["strategies"].items():
                target = merged._strategy(name)
                for i in range(merged.buckets):
                    target["count"][i] += entry["count"][i]
                    target["timely"][i] += entry["timely"][i]
                    target["predicted_sum"][i] += entry["predicted_sum"][i]
                target["brier_sum"] += entry["brier_sum"]
                target["observations"] += entry["observations"]
        return merged if merged is not None else cls()
