"""Simulation-clock time series on top of :class:`MetricsRegistry`.

PR 4's registry answers *"what happened over the whole run"*; the ROADMAP's
closed-loop controller needs *"what is happening right now"*.  This module
adds the missing time axis:

* :class:`TimeseriesRecorder` — schedules a periodic simulation-clock tick
  that deltas consecutive :meth:`MetricsRegistry.snapshot` dicts into
  fixed-interval series: per-interval **deltas** for counters (rates are
  ``delta / interval``), **last-value** samples for gauges, and windowed
  per-interval bucket counts for histograms (so any tick range yields exact
  windowed quantiles).  A bounded ring buffer caps memory: once ``capacity``
  ticks are held, the oldest tick is evicted and ``start`` advances.
* :class:`Timeline` — the recorded data, aligned on absolute tick indices
  (tick ``i`` covers simulated time ``[i·interval, (i+1)·interval)``), with
  a **commutative** :meth:`Timeline.merge` so per-cell timelines from a
  ``--jobs N`` sweep fold into one fleet-wide timeline in any order.
* :func:`encode_timeline` / :func:`decode_timeline` — a compact binary
  codec in the style of :func:`repro.obs.metrics.encode_snapshot` (JSON
  header with deduplicated boundary tables + packed int64/float64 arrays)
  so timelines cross the parallel runner's process boundary cheaply.

Everything here *observes*; nothing mutates simulation state or consumes
RNG.  With no recorder attached (``timeseries=None`` in the harnesses) not
a single event is scheduled, so disabled runs are bit-identical to a tree
without this module.  See DESIGN.md §15.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Timeline",
    "TimeseriesRecorder",
    "encode_timeline",
    "decode_timeline",
    "TIMELINE_CODEC_VERSION",
]

TIMELINE_CODEC_VERSION = 1


class Timeline:
    """Fixed-interval series extracted from registry snapshots.

    ``series`` maps the registry's Prometheus-style series name to one dict:

    * counter — ``{"type": "counter", "deltas": [v, ...]}`` (per-tick
      increments; ints stay ints, float counters stay floats);
    * gauge — ``{"type": "gauge", "values": [v | None, ...]}`` (the value at
      each tick boundary; ``None`` marks ticks before the gauge existed);
    * histogram — ``{"type": "histogram", "boundaries": [...],
      "counts": [[...], ...], "sums": [...], "totals": [...]}`` (per-tick
      *delta* bucket rows, observation sums, and observation counts).

    Every list has length :attr:`length`, and index ``j`` describes absolute
    tick ``start + j``.
    """

    __slots__ = ("interval", "start", "length", "series")

    def __init__(
        self,
        interval: float,
        start: int = 0,
        length: int = 0,
        series: Optional[Dict[str, dict]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("timeline interval must be positive")
        self.interval = float(interval)
        self.start = int(start)
        self.length = int(length)
        self.series: Dict[str, dict] = series if series is not None else {}

    # -- basic views ----------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def times(self) -> List[float]:
        """Tick-end timestamps: tick ``i`` closes at ``(i + 1) · interval``."""
        return [
            (self.start + j + 1) * self.interval for j in range(self.length)
        ]

    def rate(self, series: str) -> List[float]:
        """Per-second rate of a counter series (``delta / interval``)."""
        entry = self._entry(series, "counter")
        return [value / self.interval for value in entry["deltas"]]

    def deltas(self, series: str) -> list:
        return list(self._entry(series, "counter")["deltas"])

    def values(self, series: str) -> list:
        return list(self._entry(series, "gauge")["values"])

    def quantiles(self, series: str, q: float) -> List[float]:
        """Windowed ``q``-quantile of a histogram series, one per tick.

        Ticks with no observations report ``0.0`` (same convention as
        :meth:`repro.obs.metrics.Histogram.quantile` on an empty histogram).
        """
        entry = self._entry(series, "histogram")
        boundaries = entry["boundaries"]
        out: List[float] = []
        for row, total in zip(entry["counts"], entry["totals"]):
            out.append(_bucket_quantile(boundaries, row, total, q))
        return out

    def _entry(self, series: str, kind: str) -> dict:
        entry = self.series[series]
        if entry["type"] != kind:
            raise TypeError(
                f"series {series!r} is a {entry['type']}, not a {kind}"
            )
        return entry

    # -- merge ----------------------------------------------------------

    @staticmethod
    def merge(*timelines: "Timeline") -> "Timeline":
        """Fold timelines into one; commutative and associative.

        Tick ranges are aligned on absolute indices; counter deltas and
        histogram rows **add**, gauges take the **max** of present samples
        (the same fold :meth:`MetricsRegistry.merge` uses, which is what
        keeps ``--jobs N`` results independent of worker scheduling).
        All inputs must share the tick interval.
        """
        timelines = tuple(t for t in timelines if t is not None)
        if not timelines:
            return Timeline(1.0)
        interval = timelines[0].interval
        for t in timelines[1:]:
            if t.interval != interval:
                raise ValueError(
                    f"cannot merge timelines with intervals "
                    f"{interval} and {t.interval}"
                )
        populated = [t for t in timelines if t.length]
        if not populated:
            return Timeline(interval)
        start = min(t.start for t in populated)
        end = max(t.start + t.length for t in populated)
        length = end - start
        merged = Timeline(interval, start=start, length=length)
        for t in populated:
            offset = t.start - start
            for name, entry in t.series.items():
                have = merged.series.get(name)
                if have is None:
                    have = merged.series[name] = _blank_entry(entry, length)
                elif have["type"] != entry["type"]:
                    raise TypeError(
                        f"series {name!r} has conflicting types: "
                        f"{have['type']} vs {entry['type']}"
                    )
                _fold_entry(have, entry, offset)
        return merged

    # -- plain-dict round trip (JSONL artifacts) ------------------------

    def to_dict(self) -> dict:
        """JSON-able payload; exact inverse of :meth:`from_dict`."""
        return {
            "interval": self.interval,
            "start": self.start,
            "length": self.length,
            "series": {
                name: {
                    key: ([list(row) for row in value] if key == "counts"
                          else list(value) if isinstance(value, list) else value)
                    for key, value in entry.items()
                }
                for name, entry in self.series.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Timeline":
        return cls(
            interval=payload["interval"],
            start=payload["start"],
            length=payload["length"],
            series={
                name: dict(entry) for name, entry in payload["series"].items()
            },
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return (
            self.interval == other.interval
            and self.start == other.start
            and self.length == other.length
            and self.series == other.series
        )


def _blank_entry(template: dict, length: int) -> dict:
    kind = template["type"]
    if kind == "counter":
        return {"type": "counter", "deltas": [0] * length}
    if kind == "gauge":
        return {"type": "gauge", "values": [None] * length}
    boundaries = list(template["boundaries"])
    width = len(boundaries) + 1
    return {
        "type": "histogram",
        "boundaries": boundaries,
        "counts": [[0] * width for _ in range(length)],
        "sums": [0.0] * length,
        "totals": [0] * length,
    }


def _fold_entry(have: dict, entry: dict, offset: int) -> None:
    kind = entry["type"]
    if kind == "counter":
        deltas = have["deltas"]
        for j, value in enumerate(entry["deltas"]):
            deltas[offset + j] += value
    elif kind == "gauge":
        values = have["values"]
        for j, value in enumerate(entry["values"]):
            if value is None:
                continue
            at = offset + j
            current = values[at]
            values[at] = value if current is None else max(current, value)
    else:
        if have["boundaries"] != list(entry["boundaries"]):
            raise ValueError(
                "cannot merge histogram series with mismatched boundaries"
            )
        counts = have["counts"]
        sums = have["sums"]
        totals = have["totals"]
        for j, row in enumerate(entry["counts"]):
            target = counts[offset + j]
            for i, c in enumerate(row):
                target[i] += c
        for j, value in enumerate(entry["sums"]):
            sums[offset + j] += value
        for j, value in enumerate(entry["totals"]):
            totals[offset + j] += value


def _bucket_quantile(
    boundaries: Sequence[float], counts: Sequence[int], total: int, q: float
) -> float:
    if not total:
        return 0.0
    target = q * total
    seen = 0
    for i, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= target and bucket_count:
            if i < len(boundaries):
                return boundaries[i]
            return boundaries[-1] if boundaries else float("inf")
    return boundaries[-1] if boundaries else float("inf")


class TimeseriesRecorder:
    """Periodically deltas a registry's snapshots into a :class:`Timeline`.

    ``start()`` takes the baseline snapshot and schedules the first tick;
    every ``interval`` simulated seconds the recorder snapshots the
    registry, appends the per-series delta, and reschedules itself.  The
    recorder is an observer: it reads the registry and the clock, touches
    no RNG stream, and mutates nothing the simulation reads — so recorded
    and unrecorded runs produce identical experiment results, and a run
    with no recorder schedules no events at all.

    ``capacity`` bounds the ring: beyond it the oldest ticks are evicted
    and :attr:`Timeline.start` advances (a 12-hour soak at a 250 ms tick
    keeps the most recent ~17 minutes at the default 4096).
    """

    def __init__(
        self,
        sim,
        registry,
        interval: float = 0.25,
        capacity: int = 4096,
    ) -> None:
        if interval <= 0:
            raise ValueError("recorder interval must be positive")
        if capacity < 1:
            raise ValueError("recorder capacity must be at least 1")
        self.sim = sim
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._timeline = Timeline(self.interval)
        self._started = False
        # Per-series state, split by kind so each tick is three tight
        # loops over live instruments instead of a full registry
        # snapshot (which rebuilds every series-name string and copies
        # every bucket list; at a few hundred series that dominates the
        # tick).  Counter/gauge records are ``[instrument, samples,
        # prev_value]``; histogram records are ``[instrument, entry,
        # prev_counts, prev_count, prev_sum, width]``.
        self._known = 0
        self._counters: list = []
        self._gauges: list = []
        self._hists: list = []

    def start(self) -> "TimeseriesRecorder":
        """Baseline the registry and schedule the periodic tick."""
        if self._started:
            return self
        self._started = True
        self._rescan(baseline=True)
        self._timeline.start = int(round(self.sim.now / self.interval))
        self.sim.schedule(self.interval, self._tick)
        return self

    def _tick(self) -> None:
        self._record()
        self.sim.schedule(self.interval, self._tick)

    def _rescan(self, baseline: bool = False) -> None:
        """Adopt instruments created since the last scan.

        With ``baseline`` the current reading becomes the zero point
        (``start()``); otherwise previous values start at zero so the
        next tick captures everything since the instrument appeared.
        The registry never drops instruments and its dict preserves
        creation order, so only the tail is new.
        """
        items = self.registry.instruments()
        length = self._timeline.length
        series = self._timeline.series
        for name, kind, instrument in items[self._known :]:
            if kind == "counter":
                entry = series[name] = {"type": "counter", "deltas": [0] * length}
                prev = instrument.value if baseline else 0
                self._counters.append([instrument, entry["deltas"], prev])
            elif kind == "gauge":
                entry = series[name] = {"type": "gauge", "values": [None] * length}
                prev = instrument.value if baseline else 0.0
                self._gauges.append([instrument, entry["values"], prev])
            else:
                width = len(instrument.counts)
                entry = series[name] = {
                    "type": "histogram",
                    "boundaries": list(instrument.boundaries),
                    "counts": [[0] * width for _ in range(length)],
                    "sums": [0.0] * length,
                    "totals": [0] * length,
                }
                if baseline:
                    self._hists.append(
                        [
                            instrument,
                            entry,
                            list(instrument.counts),
                            instrument.count,
                            instrument.sum,
                            width,
                        ]
                    )
                else:
                    self._hists.append(
                        [instrument, entry, [0] * width, 0, 0.0, width]
                    )
        self._known = len(items)

    def _record(self) -> None:
        if self.registry.size() != self._known:
            self._rescan()
        timeline = self._timeline
        for rec in self._counters:
            value = rec[0].value
            rec[1].append(value - rec[2])
            rec[2] = value
        for rec in self._gauges:
            value = rec[0].value
            rec[1].append(float(value))
            rec[2] = value
        for rec in self._hists:
            instrument = rec[0]
            entry = rec[1]
            count = instrument.count
            if count == rec[3]:
                # No observations this tick: histogram state is frozen
                # (count is monotone), so the delta row is all zeros.
                entry["counts"].append([0] * rec[5])
                entry["sums"].append(0.0)
                entry["totals"].append(0)
            else:
                counts = list(instrument.counts)
                entry["counts"].append(
                    [a - b for a, b in zip(counts, rec[2])]
                )
                total = instrument.sum
                entry["sums"].append(total - rec[4])
                entry["totals"].append(count - rec[3])
                rec[2] = counts
                rec[3] = count
                rec[4] = total
        timeline.length += 1
        if timeline.length > self.capacity:
            self._evict(timeline.length - self.capacity)

    def _evict(self, n: int) -> None:
        timeline = self._timeline
        for entry in timeline.series.values():
            if entry["type"] == "counter":
                del entry["deltas"][:n]
            elif entry["type"] == "gauge":
                del entry["values"][:n]
            else:
                del entry["counts"][:n]
                del entry["sums"][:n]
                del entry["totals"][:n]
        timeline.start += n
        timeline.length -= n

    def flush(self) -> None:
        """Capture activity since the last tick as one final partial tick.

        Call after the simulation drains so the tail of the run (anything
        shorter than one full interval) is not lost from the timeline.
        No-op when nothing changed since the last tick.
        """
        if self._started and self._changed():
            self._record()

    def _changed(self) -> bool:
        """Anything moved since the last tick (cheap scalar comparisons)."""
        if self.registry.size() != self._known:
            return True
        for rec in self._counters:
            if rec[0].value != rec[2]:
                return True
        for rec in self._gauges:
            if rec[0].value != rec[2]:
                return True
        for rec in self._hists:
            if rec[0].count != rec[3]:
                return True
        return False

    def timeline(self) -> Timeline:
        """The recorded timeline (live view; copy via to_dict if needed)."""
        return self._timeline


# ---------------------------------------------------------------------------
# Compact timeline codec
# ---------------------------------------------------------------------------
#
# Same shape as the snapshot codec (obs/metrics.py): a small JSON header
# describing each series, histogram boundary tables deduplicated, then one
# packed little-endian int64 array and one float64 array.  Gauges encode
# ``None`` samples as NaN (a recorded gauge sample is always a finite
# float, so the encoding is unambiguous).  The round-trip is exact:
# ``decode_timeline(encode_timeline(t)) == t`` including counter value
# types, which is what keeps the runner's jobs=1 == jobs=N property exact
# when timelines ride along with cells.


def encode_timeline(timeline: Timeline) -> bytes:
    """Pack a :class:`Timeline` into a flat byte payload."""
    ints: List[int] = []
    floats: List[float] = []
    series_index: list = []
    boundary_tables: List[List[float]] = []
    boundary_keys: Dict[Tuple[float, ...], int] = {}
    for name, entry in timeline.series.items():
        kind = entry["type"]
        if kind == "counter":
            deltas = entry["deltas"]
            if all(
                isinstance(v, int) and not isinstance(v, bool) for v in deltas
            ):
                series_index.append([name, "ci"])
                ints.extend(deltas)
            else:
                series_index.append([name, "cf"])
                floats.extend(float(v) for v in deltas)
        elif kind == "gauge":
            series_index.append([name, "g"])
            floats.extend(
                float("nan") if v is None else float(v)
                for v in entry["values"]
            )
        else:
            key = tuple(entry["boundaries"])
            table = boundary_keys.get(key)
            if table is None:
                table = boundary_keys[key] = len(boundary_tables)
                boundary_tables.append(list(key))
            series_index.append([name, "h", table])
            for row in entry["counts"]:
                ints.extend(row)
            ints.extend(entry["totals"])
            floats.extend(entry["sums"])
    header = json.dumps(
        {
            "v": TIMELINE_CODEC_VERSION,
            "interval": timeline.interval,
            "start": timeline.start,
            "length": timeline.length,
            "series": series_index,
            "boundaries": boundary_tables,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    int_array = np.asarray(ints, dtype="<i8")
    float_array = np.asarray(floats, dtype="<f8")
    return (
        struct.pack("<III", len(header), int_array.size, float_array.size)
        + header
        + int_array.tobytes()
        + float_array.tobytes()
    )


def decode_timeline(payload: bytes) -> Timeline:
    """Inverse of :func:`encode_timeline` — exact, including value types."""
    header_len, n_ints, n_floats = struct.unpack_from("<III", payload, 0)
    pos = struct.calcsize("<III")
    header = json.loads(payload[pos : pos + header_len].decode("utf-8"))
    if header.get("v") != TIMELINE_CODEC_VERSION:
        raise ValueError(
            f"unsupported timeline codec version {header.get('v')!r}"
        )
    pos += header_len
    ints = np.frombuffer(payload, dtype="<i8", count=n_ints, offset=pos)
    pos += ints.nbytes
    floats = np.frombuffer(payload, dtype="<f8", count=n_floats, offset=pos)
    boundary_tables = header["boundaries"]
    length = header["length"]
    timeline = Timeline(
        interval=header["interval"], start=header["start"], length=length
    )
    int_at = 0
    float_at = 0
    for item in header["series"]:
        name, tag = item[0], item[1]
        if tag == "ci":
            timeline.series[name] = {
                "type": "counter",
                "deltas": [int(v) for v in ints[int_at : int_at + length]],
            }
            int_at += length
        elif tag == "cf":
            timeline.series[name] = {
                "type": "counter",
                "deltas": [
                    float(v) for v in floats[float_at : float_at + length]
                ],
            }
            float_at += length
        elif tag == "g":
            timeline.series[name] = {
                "type": "gauge",
                "values": [
                    None if math.isnan(v) else float(v)
                    for v in floats[float_at : float_at + length]
                ],
            }
            float_at += length
        else:
            boundaries = list(boundary_tables[item[2]])
            width = len(boundaries) + 1
            counts = [
                [int(v) for v in ints[int_at + j * width : int_at + (j + 1) * width]]
                for j in range(length)
            ]
            int_at += length * width
            totals = [int(v) for v in ints[int_at : int_at + length]]
            int_at += length
            sums = [float(v) for v in floats[float_at : float_at + length]]
            float_at += length
            timeline.series[name] = {
                "type": "histogram",
                "boundaries": boundaries,
                "counts": counts,
                "sums": sums,
                "totals": totals,
            }
    return timeline
