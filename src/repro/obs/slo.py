"""Declarative SLOs over timelines: compliance, burn rates, attribution.

The controller the ROADMAP plans (OptCon-style SLA-aware tuning) needs
three continuous sensors, and this module computes all of them from the
:class:`~repro.obs.timeseries.Timeline` a recorder produces:

* **Rolling compliance** — per :class:`SloSpec`, the fraction of good
  events so far against the declared objective (timeliness ``P_c(d)`` or a
  staleness-wait bound);
* **Error-budget burn** — Google-SRE-style multi-window burn rates: a
  *fast* (paging) and *slow* (ticketing) window each compare the recent
  bad-event fraction against the budget ``1 − objective``; an alert fires
  when both the window and its short confirmation window (1/12 of the
  window, the SRE workbook's reset guard) exceed the threshold;
* **Staleness attribution** — the per-read decomposition the replicas
  record (lazy-publisher lag vs. commit-queue wait vs. network delay,
  see DESIGN.md §15) aggregated into component seconds and fractions.

:meth:`SloEngine.signals` is the stable API the future controller plugs
into: one flat dict per spec with documented keys, computed from whatever
timeline prefix exists at call time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.timeseries import Timeline

__all__ = [
    "SloSpec",
    "SloReport",
    "BurnAlert",
    "SloEngine",
    "attribution_summary",
    "parse_series",
    "ATTRIBUTION_COMPONENTS",
]

#: Component labels of the per-read staleness decomposition (the replicas
#: guarantee the components sum to the observed staleness wait per read).
ATTRIBUTION_COMPONENTS = ("lazy_publisher", "queue", "network")

_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')
_SERIES_RE = re.compile(r"^(?P<name>[^{]+)(\{(?P<labels>.*)\})?$")


def parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Split ``name{k="v",...}`` into ``(name, {k: v})``."""
    match = _SERIES_RE.match(series)
    if match is None:  # defensive; the registry emits well-formed names
        return series, {}
    labels = match.group("labels")
    if not labels:
        return match.group("name"), {}
    return match.group("name"), dict(_LABEL_RE.findall(labels))


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a (class, priority, region) selector.

    ``kind`` picks the signal:

    * ``"timeliness"`` — good/bad from the ``client_reads_judged`` /
      ``client_timing_failures`` counters (the paper's ``P_c(d)``);
    * ``"staleness"`` — good/bad from the ``replica_staleness_wait_seconds``
      histogram, where a read is *bad* when its staleness wait exceeded
      ``staleness_bound`` seconds.

    The selector labels (``client``/``priority``/``region``) must be a
    subset of a series' labels for it to count toward this spec; ``None``
    matches everything, so one spec can cover a whole class of clients.
    """

    name: str
    objective: float  # target good fraction in (0, 1)
    kind: str = "timeliness"
    client: Optional[str] = None
    priority: Optional[str] = None
    region: Optional[str] = None
    staleness_bound: Optional[float] = None  # seconds (kind="staleness")
    fast_window: float = 1.0  # seconds; the paging window
    slow_window: float = 6.0  # seconds; the ticketing window
    fast_burn: float = 14.0  # burn-rate threshold for the fast window
    slow_burn: float = 6.0  # burn-rate threshold for the slow window

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be strictly between 0 and 1")
        if self.kind not in ("timeliness", "staleness"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "staleness" and self.staleness_bound is None:
            raise ValueError("staleness SLOs need a staleness_bound")

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.objective

    def selector(self) -> Dict[str, str]:
        out = {}
        for key in ("client", "priority", "region"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class BurnAlert:
    """A burn-rate alert's rising edge."""

    time: float  # simulated seconds (tick-end timestamp)
    tick: int  # absolute tick index
    severity: str  # "page" (fast window) | "ticket" (slow window)
    burn: float  # the offending window's burn rate at the edge


@dataclass
class SloReport:
    """Everything :meth:`SloEngine.evaluate` derives for one spec."""

    spec: SloSpec
    times: List[float] = field(default_factory=list)
    good: List[float] = field(default_factory=list)  # per-tick good events
    bad: List[float] = field(default_factory=list)  # per-tick bad events
    compliance: List[float] = field(default_factory=list)  # cumulative
    budget_consumed: List[float] = field(default_factory=list)  # cumulative
    fast_burn: List[float] = field(default_factory=list)  # per tick
    slow_burn: List[float] = field(default_factory=list)  # per tick
    alert_active: List[bool] = field(default_factory=list)  # page-level
    alerts: List[BurnAlert] = field(default_factory=list)

    @property
    def total_good(self) -> float:
        return sum(self.good)

    @property
    def total_bad(self) -> float:
        return sum(self.bad)

    def met(self) -> bool:
        """Did the run finish within its error budget?"""
        if not self.compliance:
            return True
        return self.compliance[-1] >= self.spec.objective - 1e-12

    def first_alert(self, severity: str = "page") -> Optional[BurnAlert]:
        for alert in self.alerts:
            if alert.severity == severity:
                return alert
        return None


class SloEngine:
    """Evaluates :class:`SloSpec` objectives against a :class:`Timeline`.

    Stateless between calls: hand it whatever timeline prefix exists and it
    recomputes compliance, burn rates, and alert edges from scratch (cheap
    — one pass per spec with prefix sums).
    """

    def __init__(self, specs: Sequence[SloSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO spec names must be unique")
        self.specs = tuple(specs)

    # -- event extraction ------------------------------------------------

    def _events(
        self, spec: SloSpec, timeline: Timeline
    ) -> Tuple[List[float], List[float]]:
        """Per-tick (total, bad) event counts matching the spec's selector."""
        n = timeline.length
        total = [0.0] * n
        bad = [0.0] * n
        selector = spec.selector()
        if spec.kind == "timeliness":
            for series, entry in timeline.series.items():
                name, labels = parse_series(series)
                if not _matches(selector, labels):
                    continue
                if name == "client_reads_judged":
                    for j, v in enumerate(entry["deltas"]):
                        total[j] += v
                elif name == "client_timing_failures":
                    for j, v in enumerate(entry["deltas"]):
                        bad[j] += v
        else:
            bound = spec.staleness_bound
            assert bound is not None
            for series, entry in timeline.series.items():
                name, labels = parse_series(series)
                if name != "replica_staleness_wait_seconds":
                    continue
                if not _matches(selector, labels):
                    continue
                boundaries = entry["boundaries"]
                # A read in bucket i has wait <= boundaries[i]; buckets
                # whose upper edge exceeds the bound count as bad (the
                # conservative side of the quantization).
                for j, row in enumerate(entry["counts"]):
                    total[j] += entry["totals"][j]
                    for i, c in enumerate(row):
                        if not c:
                            continue
                        upper = (
                            boundaries[i]
                            if i < len(boundaries)
                            else float("inf")
                        )
                        if upper > bound:
                            bad[j] += c
        return total, bad

    # -- evaluation ------------------------------------------------------

    def evaluate(self, timeline: Timeline) -> Dict[str, SloReport]:
        """One :class:`SloReport` per spec, keyed by spec name."""
        return {
            spec.name: self._evaluate_spec(spec, timeline)
            for spec in self.specs
        }

    def _evaluate_spec(self, spec: SloSpec, timeline: Timeline) -> SloReport:
        report = SloReport(spec=spec)
        n = timeline.length
        if n == 0:
            return report
        total, bad = self._events(spec, timeline)
        report.times = timeline.times()
        report.good = [t - b for t, b in zip(total, bad)]
        report.bad = bad

        # Prefix sums for O(1) windows.
        cum_total = _prefix(total)
        cum_bad = _prefix(bad)

        fast_w = _window_ticks(spec.fast_window, timeline.interval)
        slow_w = _window_ticks(spec.slow_window, timeline.interval)
        fast_short = max(1, fast_w // 12)
        slow_short = max(1, slow_w // 12)
        budget = spec.budget

        paging = False
        ticketing = False
        for i in range(n):
            seen = cum_total[i + 1]
            bad_seen = cum_bad[i + 1]
            report.compliance.append(
                1.0 if seen == 0 else (seen - bad_seen) / seen
            )
            report.budget_consumed.append(
                0.0 if seen == 0 else bad_seen / (seen * budget)
            )
            fast = _burn(cum_total, cum_bad, i, fast_w, budget)
            slow = _burn(cum_total, cum_bad, i, slow_w, budget)
            report.fast_burn.append(fast)
            report.slow_burn.append(slow)

            page = (
                fast >= spec.fast_burn
                and _burn(cum_total, cum_bad, i, fast_short, budget)
                >= spec.fast_burn
            )
            ticket = (
                slow >= spec.slow_burn
                and _burn(cum_total, cum_bad, i, slow_short, budget)
                >= spec.slow_burn
            )
            if page and not paging:
                report.alerts.append(
                    BurnAlert(
                        time=report.times[i],
                        tick=timeline.start + i,
                        severity="page",
                        burn=fast,
                    )
                )
            if ticket and not ticketing:
                report.alerts.append(
                    BurnAlert(
                        time=report.times[i],
                        tick=timeline.start + i,
                        severity="ticket",
                        burn=slow,
                    )
                )
            paging = page
            ticketing = ticket
            report.alert_active.append(page)
        return report

    # -- controller API --------------------------------------------------

    def signals(self, timeline: Timeline) -> Dict[str, Dict[str, float]]:
        """Current control signals, one flat dict per spec name.

        This is the stable surface the adaptive controller consumes; keys
        are guaranteed:

        * ``time`` — timestamp of the last closed tick (0.0 if none);
        * ``compliance`` — good fraction so far (1.0 with no events);
        * ``objective`` — the spec's target, echoed for convenience;
        * ``budget_remaining`` — ``1 − consumed`` (may go negative);
        * ``fast_burn`` / ``slow_burn`` — current window burn rates;
        * ``alerting`` — 1.0 while the page-level alert condition holds.
        """
        out: Dict[str, Dict[str, float]] = {}
        for spec in self.specs:
            report = self._evaluate_spec(spec, timeline)
            if report.times:
                out[spec.name] = {
                    "time": report.times[-1],
                    "compliance": report.compliance[-1],
                    "objective": spec.objective,
                    "budget_remaining": 1.0 - report.budget_consumed[-1],
                    "fast_burn": report.fast_burn[-1],
                    "slow_burn": report.slow_burn[-1],
                    "alerting": 1.0 if report.alert_active[-1] else 0.0,
                }
            else:
                out[spec.name] = {
                    "time": 0.0,
                    "compliance": 1.0,
                    "objective": spec.objective,
                    "budget_remaining": 1.0,
                    "fast_burn": 0.0,
                    "slow_burn": 0.0,
                    "alerting": 0.0,
                }
        return out


def _matches(selector: Dict[str, str], labels: Dict[str, str]) -> bool:
    return all(labels.get(k) == v for k, v in selector.items())


def _prefix(values: List[float]) -> List[float]:
    out = [0.0]
    acc = 0.0
    for v in values:
        acc += v
        out.append(acc)
    return out


def _window_ticks(window: float, interval: float) -> int:
    return max(1, int(round(window / interval)))


def _burn(
    cum_total: List[float],
    cum_bad: List[float],
    i: int,
    w: int,
    budget: float,
) -> float:
    lo = max(0, i + 1 - w)
    total = cum_total[i + 1] - cum_total[lo]
    if total <= 0:
        # An empty window (no judged events — e.g. every read shed) is
        # *no evidence*, not an infinite burn; the controller must never
        # see a NaN here.
        return 0.0
    bad = cum_bad[i + 1] - cum_bad[lo]
    if budget <= 0.0:
        # Degenerate budget (objective rounded to 1.0 upstream): any bad
        # event is an instant page-level burn, zero bad burns nothing —
        # never a ZeroDivisionError/NaN.
        return float("inf") if bad > 0 else 0.0
    return (bad / total) / budget


# ---------------------------------------------------------------------------
# Staleness attribution aggregation
# ---------------------------------------------------------------------------
def attribution_summary(source) -> dict:
    """Aggregate the per-read staleness decomposition.

    ``source`` is either a :class:`Timeline` or a
    :meth:`MetricsRegistry.snapshot` dict.  Returns::

        {"observed_seconds": float,     # total staleness wait, all reads
         "reads": int,                  # reads carrying an observation
         "components": {component: seconds},
         "fractions": {component: share of observed_seconds}}

    The replica instrumentation guarantees the per-read components sum to
    the observed wait, so ``sum(components.values())`` equals
    ``observed_seconds`` up to float rounding.
    """
    components = {name: 0.0 for name in ATTRIBUTION_COMPONENTS}
    observed = 0.0
    reads = 0
    if isinstance(source, Timeline):
        for series, entry in source.series.items():
            name, labels = parse_series(series)
            if name == "replica_staleness_wait_component_seconds":
                component = labels.get("component", "")
                if component in components:
                    components[component] += float(sum(entry["deltas"]))
            elif name == "replica_staleness_wait_seconds":
                observed += float(sum(entry["sums"]))
                reads += int(sum(entry["totals"]))
    else:
        for series, entry in source.items():
            name, labels = parse_series(series)
            if name == "replica_staleness_wait_component_seconds":
                component = labels.get("component", "")
                if component in components:
                    components[component] += float(entry["value"])
            elif name == "replica_staleness_wait_seconds":
                observed += float(entry["sum"])
                reads += int(entry["count"])
    fractions = {
        name: (value / observed if observed > 0 else 0.0)
        for name, value in components.items()
    }
    return {
        "observed_seconds": observed,
        "reads": reads,
        "components": components,
        "fractions": fractions,
    }
