"""Naive selection policies used as comparison baselines.

All of them ignore the probabilistic models (that is the point); they see
the same candidate list Algorithm 1 sees and return a subset.  The
predicted probability they report is computed with the same accumulator as
Algorithm 1 so experiment reports can show what the model *would* have
predicted for their choice.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.qos import QoSSpec
from repro.core.selection import (
    ReplicaView,
    SelectionResult,
    SelectionStrategy,
    _PkAccumulator,
)


def _predict(
    chosen: Sequence[ReplicaView], stale_factor: float, target: float
) -> SelectionResult:
    """Score a fixed choice with the paper's P_K(d) model (no exclusion)."""
    acc = _PkAccumulator(stale_factor)
    for replica in chosen:
        acc.include(replica)
    probability = acc.probability() if chosen else 0.0
    return SelectionResult(
        tuple(r.name for r in chosen), probability, probability >= target
    )


class AllReplicasSelection(SelectionStrategy):
    """§5's first strawman: send every read to every replica."""

    name = "all-replicas"

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        return _predict(list(candidates), stale_factor, qos.min_probability)


class RandomSingleSelection(SelectionStrategy):
    """§5's second strawman: a single uniformly random replica per read."""

    name = "random-single"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        if not candidates:
            return SelectionResult((), 0.0, False)
        choice = self._rng.choice(list(candidates))
        return _predict([choice], stale_factor, qos.min_probability)


class RoundRobinSelection(SelectionStrategy):
    """Single replica per read, rotating deterministically."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        if not candidates:
            return SelectionResult((), 0.0, False)
        ordered = sorted(candidates, key=lambda r: r.name)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return _predict([choice], stale_factor, qos.min_probability)


class FixedSizeSelection(SelectionStrategy):
    """Always the same number of replicas, rotating for balance.

    The non-adaptive middle ground: redundancy without a model.  ``k=1``
    degenerates to round-robin; ``k=len(candidates)`` to all-replicas.
    """

    name = "fixed-k"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        self.k = k
        self._cursor = 0

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        if not candidates:
            return SelectionResult((), 0.0, False)
        ordered = sorted(candidates, key=lambda r: r.name)
        k = min(self.k, len(ordered))
        start = self._cursor % len(ordered)
        self._cursor += k
        chosen = [ordered[(start + i) % len(ordered)] for i in range(k)]
        return _predict(chosen, stale_factor, qos.min_probability)


class PrimaryOnlySelection(SelectionStrategy):
    """Strong-consistency stance: read only from (all) primary replicas.

    This is what a classic active-replication deployment does — every read
    sees the freshest state, at the price of concentrating read load on
    the small primary group.
    """

    name = "primary-only"

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        primaries = [r for r in candidates if r.is_primary]
        return _predict(primaries, stale_factor, qos.min_probability)
