"""Baseline replica-selection strategies.

§5 motivates the probabilistic algorithm by dismissing two naive policies:
"allocate all the available replicas to service a single client" (not
scalable) and "assigning a single replica to service each client" (no
failure/timing margin).  This package implements both, plus round-robin,
fixed-K, and primary-only variants, behind the same
:class:`~repro.core.selection.SelectionStrategy` interface so experiments
can compare them head-to-head (ablation A5 in DESIGN.md).
"""

from repro.baselines.strategies import (
    AllReplicasSelection,
    FixedSizeSelection,
    PrimaryOnlySelection,
    RandomSingleSelection,
    RoundRobinSelection,
)

__all__ = [
    "AllReplicasSelection",
    "FixedSizeSelection",
    "PrimaryOnlySelection",
    "RandomSingleSelection",
    "RoundRobinSelection",
]
