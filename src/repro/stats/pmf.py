"""Discrete probability mass functions over quantized durations.

§5.2 of the paper computes a replica's response-time distribution as the
*discrete convolution* of the pmfs of its service time ``S``, queuing delay
``W``, (for deferred reads) lazy-update wait ``U``, and the most recent
gateway delay ``G``.  The pmfs themselves come from the relative frequency
of values recorded in sliding windows.

:class:`DiscretePmf` represents a pmf on a uniform grid: values are
``(offset + index) * quantum`` seconds.  The grid makes convolution a plain
``numpy.convolve`` (offsets add, mass arrays convolve), which keeps the
online prediction cheap — exactly the property the paper's Figure 3
overhead measurement depends on.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

DEFAULT_QUANTUM = 1e-3  # 1 ms bins


class DiscretePmf:
    """A pmf on the uniform grid ``value = (offset + i) * quantum``.

    Instances are immutable in practice: all operations return new pmfs.
    """

    __slots__ = ("quantum", "offset", "mass", "_cum", "_pad")

    def __init__(self, quantum: float, offset: int, mass: np.ndarray) -> None:
        if quantum <= 0:
            raise ValueError(f"non-positive quantum {quantum!r}")
        if offset < 0:
            raise ValueError(f"negative offset {offset!r} (durations only)")
        mass = np.asarray(mass, dtype=float)
        if mass.ndim != 1 or mass.size == 0:
            raise ValueError("mass must be a non-empty 1-D array")
        if np.any(mass < -1e-12):
            raise ValueError("negative probability mass")
        total = float(mass.sum())
        if total <= 0:
            raise ValueError("zero total probability mass")
        self.quantum = float(quantum)
        self.offset = int(offset)
        self.mass = np.clip(mass, 0.0, None) / total
        self._cum: Optional[np.ndarray] = None
        self._pad: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls, samples: Iterable[float], quantum: float = DEFAULT_QUANTUM
    ) -> "DiscretePmf":
        """Build a pmf from raw duration samples by quantizing to the grid.

        Each sample contributes equal mass (relative frequency, as §5.2
        prescribes).  Negative samples are clamped to zero.
        """
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("cannot build a pmf from zero samples")
        bins = np.rint(np.clip(values, 0.0, None) / quantum).astype(int)
        low = int(bins.min())
        mass = np.bincount(bins - low).astype(float)
        return cls(quantum, low, mass)

    @classmethod
    def from_histogram(
        cls,
        quantum: float,
        offset: int,
        counts: Sequence[float] | np.ndarray,
    ) -> "DiscretePmf":
        """Build a pmf from pre-binned counts on the grid.

        The counterpart of :meth:`from_samples` for callers that already
        maintain an incremental histogram (``SlidingWindow.histogram``):
        the counts are taken as-is, so construction is O(bins) with no
        pass over raw samples.  Bit-for-bit equivalent to
        :meth:`from_samples` on the samples the histogram summarizes.
        """
        return cls(quantum, offset, np.asarray(counts, dtype=float))

    @classmethod
    def degenerate(
        cls, value: float, quantum: float = DEFAULT_QUANTUM
    ) -> "DiscretePmf":
        """A point mass at ``value`` (used for the latest gateway delay)."""
        bin_index = max(0, int(round(max(0.0, value) / quantum)))
        return cls(quantum, bin_index, np.array([1.0]))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def support_min(self) -> float:
        return self.offset * self.quantum

    @property
    def support_max(self) -> float:
        return (self.offset + self.mass.size - 1) * self.quantum

    def values(self) -> np.ndarray:
        """Grid values (seconds) aligned with :attr:`mass`."""
        return (self.offset + np.arange(self.mass.size)) * self.quantum

    def mean(self) -> float:
        return float(np.dot(self.values(), self.mass))

    def variance(self) -> float:
        values = self.values()
        mu = float(np.dot(values, self.mass))
        return float(np.dot((values - mu) ** 2, self.mass))

    def _cumulative(self) -> np.ndarray:
        """Lazily materialized running sum of :attr:`mass`.

        Built once per pmf, after which every :meth:`cdf` is an O(1)
        index, :meth:`quantile` an O(log n) bisection, and
        :meth:`cdf_many` one vectorized gather — instead of O(n) slicing
        per call.  Safe because instances are immutable in practice.
        """
        cum = self._cum
        if cum is None:
            cum = np.cumsum(self.mass)
            self._cum = cum
        return cum

    def _padded_cumulative(self) -> np.ndarray:
        """Cumulative mass with a leading 0.0, cached like :attr:`_cum`.

        The pad turns a :meth:`cdf_many` gather into one fancy index with
        no branch for the "before the support" bucket; caching it keeps
        repeated batched evaluations (the selection hot loop) from
        re-allocating the array per call.
        """
        padded = self._pad
        if padded is None:
            padded = np.concatenate(([0.0], self._cumulative()))
            self._pad = padded
        return padded

    def cdf(self, x: float) -> float:
        """P(X <= x): total mass of grid values <= x (float-error tolerant)."""
        if x < self.support_min:
            return 0.0
        # math.floor == np.floor for every finite float, without the numpy
        # scalar round-trip — this is the hottest line of the predictor.
        upto = math.floor(x / self.quantum + 1e-9) - self.offset + 1
        if upto <= 0:
            return 0.0
        if upto >= self.mass.size:
            return 1.0
        return float(self._cumulative()[upto - 1])

    def cdf_many(self, xs: Iterable[float]) -> np.ndarray:
        """Vectorized :meth:`cdf` over many evaluation points at once.

        One gather against the cached cumulative array, for callers that
        evaluate a batch of deadlines (or one deadline against a grid of
        candidates) in a single step.  Element-for-element identical to
        calling :meth:`cdf` in a loop.
        """
        xs = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs, dtype=float)
        bins = np.floor(xs / self.quantum + 1e-9).astype(int)
        upto = np.clip(bins - self.offset + 1, 0, self.mass.size)
        out = self._padded_cumulative()[upto]
        out[upto == self.mass.size] = 1.0
        out[xs < self.support_min] = 0.0
        return out

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` i.i.d. values from the pmf (inverse-CDF on the grid).

        One uniform vector and one ``searchsorted`` against the cached
        cumulative array — the vectorized sampling primitive the
        aggregated client tier uses to realize response times for whole
        arrival batches at once.  Each draw is a grid value, i.e. exactly
        a value :meth:`quantile` could return.
        """
        if n < 0:
            raise ValueError(f"negative sample count {n!r}")
        if n == 0:
            return np.empty(0, dtype=float)
        u = rng.random(n)
        indices = np.searchsorted(self._cumulative(), u, side="right")
        np.minimum(indices, self.mass.size - 1, out=indices)
        return (self.offset + indices) * self.quantum

    def quantile(self, q: float) -> float:
        """Smallest grid value v with P(X <= v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level {q!r} outside [0, 1]")
        cumulative = self._cumulative()
        index = int(np.searchsorted(cumulative, q - 1e-12))
        index = min(index, self.mass.size - 1)
        return (self.offset + index) * self.quantum

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def convolve(self, other: "DiscretePmf") -> "DiscretePmf":
        """Distribution of the sum of two independent grid variables."""
        if abs(other.quantum - self.quantum) > 1e-15:
            raise ValueError(
                f"quantum mismatch: {self.quantum} vs {other.quantum}"
            )
        mass = np.convolve(self.mass, other.mass)
        return DiscretePmf(self.quantum, self.offset + other.offset, mass)

    def shift(self, delta: float) -> "DiscretePmf":
        """Add a constant (non-negative after quantization) to the variable."""
        bins = int(round(delta / self.quantum))
        new_offset = self.offset + bins
        if new_offset < 0:
            raise ValueError(f"shift {delta!r} would move support negative")
        return DiscretePmf(self.quantum, new_offset, self.mass.copy())

    def mix(self, other: "DiscretePmf", weight: float) -> "DiscretePmf":
        """Mixture ``weight * self + (1 - weight) * other``."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"mixture weight {weight!r} outside [0, 1]")
        if abs(other.quantum - self.quantum) > 1e-15:
            raise ValueError("quantum mismatch in mixture")
        low = min(self.offset, other.offset)
        high = max(self.offset + self.mass.size, other.offset + other.mass.size)
        mass = np.zeros(high - low, dtype=float)
        mass[self.offset - low : self.offset - low + self.mass.size] += (
            weight * self.mass
        )
        mass[other.offset - low : other.offset - low + other.mass.size] += (
            1.0 - weight
        ) * other.mass
        return DiscretePmf(self.quantum, low, mass)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiscretePmf(quantum={self.quantum}, bins={self.mass.size}, "
            f"support=[{self.support_min:.4f}, {self.support_max:.4f}], "
            f"mean={self.mean():.4f})"
        )


# Combined operand size (in bins) above which a pairwise convolution goes
# through the FFT instead of the direct O(n*m) product.  Below it, direct
# convolution is both faster and exact — in particular, every pmf the §6
# testbed produces (sliding windows of 10–40 samples) stays far below the
# threshold, so the figure sweeps remain bit-identical to the direct path.
CONVOLVE_FFT_THRESHOLD = 1024


def _convolve_mass(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Convolve two mass arrays, via FFT when the operands are large.

    The FFT path introduces float noise of order 1e-15; masses are
    clipped to non-negative (DiscretePmf renormalizes on construction),
    and the property tests pin the result to the direct convolution
    within 1e-12.
    """
    if a.size + b.size < CONVOLVE_FFT_THRESHOLD:
        return np.convolve(a, b)
    try:
        from scipy.signal import fftconvolve

        out = fftconvolve(a, b)
    except ImportError:  # pragma: no cover - scipy is a baked-in dependency
        n = a.size + b.size - 1
        nfft = 1 << (n - 1).bit_length()
        out = np.fft.irfft(np.fft.rfft(a, nfft) * np.fft.rfft(b, nfft), nfft)[:n]
    return np.clip(out, 0.0, None)


def convolve_all(pmfs: Sequence[DiscretePmf]) -> DiscretePmf:
    """Convolve a sequence of pmfs (sum of independent variables).

    Small inputs (total support below :data:`CONVOLVE_FFT_THRESHOLD`)
    take the historical left fold over :meth:`DiscretePmf.convolve`,
    which is exact and bit-stable.  Large inputs switch to a balanced
    tree reduction — pairing off neighbours keeps operand sizes even, so
    the total work is O(S log k) with FFT pairs instead of the left
    fold's O(S^2) for k pmfs of total support S.
    """
    if not pmfs:
        raise ValueError("convolve_all needs at least one pmf")
    quantum = pmfs[0].quantum
    for pmf in pmfs[1:]:
        if abs(pmf.quantum - quantum) > 1e-15:
            raise ValueError(f"quantum mismatch: {quantum} vs {pmf.quantum}")
    if sum(p.mass.size for p in pmfs) < CONVOLVE_FFT_THRESHOLD:
        result = pmfs[0]
        for pmf in pmfs[1:]:
            result = result.convolve(pmf)
        return result
    level: list[tuple[int, np.ndarray]] = [(p.offset, p.mass) for p in pmfs]
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            (off_a, mass_a), (off_b, mass_b) = level[i], level[i + 1]
            next_level.append((off_a + off_b, _convolve_mass(mass_a, mass_b)))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    offset, mass = level[0]
    return DiscretePmf(quantum, offset, mass)
