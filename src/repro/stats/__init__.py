"""Probability toolbox used by the middleware's online models.

* :mod:`repro.stats.pmf` — discrete probability mass functions built from
  quantized performance samples, with convolution and CDF evaluation
  (§5.2: the response-time distribution is a discrete convolution of the
  service-time, queuing-delay, gateway-delay, and lazy-wait pmfs).
* :mod:`repro.stats.sliding_window` — bounded most-recent-``l`` sample
  windows (§5.2: "the most recent l measurements ... in separate sliding
  windows").
* :mod:`repro.stats.poisson` — Poisson CDF for the staleness factor (Eq. 4).
* :mod:`repro.stats.confidence` — binomial proportion confidence intervals
  (§6: 95 % intervals assuming binomially distributed timing failures).
* :mod:`repro.stats.summary` — running summaries used in reports.
"""

from repro.stats.pmf import DiscretePmf
from repro.stats.sliding_window import SlidingWindow
from repro.stats.poisson import poisson_cdf, poisson_pmf
from repro.stats.confidence import binomial_confidence_interval, wilson_interval
from repro.stats.summary import RunningSummary, percentile

__all__ = [
    "DiscretePmf",
    "SlidingWindow",
    "poisson_cdf",
    "poisson_pmf",
    "binomial_confidence_interval",
    "wilson_interval",
    "RunningSummary",
    "percentile",
]
