"""Bounded most-recent-sample windows.

§5.2: "The client handlers record the most recent ``l`` measurements of
these parameters in separate sliding windows in an information repository.
The size of the sliding window, ``l``, is chosen so as to include a
reasonable number of recently measured values, while eliminating obsolete
measurements."

Beyond the paper, each window carries two pieces of bookkeeping that make
the §5.2 prediction loop incremental instead of per-read:

* a monotonically increasing **version** (bumped on every record/clear),
  which the prediction cache uses as an invalidation key — "has anything
  changed since the pmf was last built?" becomes one integer comparison;
* an incrementally maintained **quantized histogram** (bin counts updated
  on record and evict), so building a :class:`~repro.stats.pmf.DiscretePmf`
  no longer iterates the raw samples at all.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

import numpy as np

from repro.stats.pmf import DEFAULT_QUANTUM


def quantize_bin(value: float, quantum: float) -> int:
    """Grid bin of one duration sample: ``rint(max(0, value) / quantum)``.

    Python's ``round`` and ``numpy.rint`` both round half to even on the
    same IEEE double, so this matches the vectorized binning in
    :meth:`~repro.stats.pmf.DiscretePmf.from_samples` bit for bit.
    """
    return round(max(0.0, float(value)) / quantum)


class SlidingWindow:
    """Keeps the most recent ``size`` float samples in arrival order."""

    def __init__(self, size: int, quantum: float = DEFAULT_QUANTUM) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size!r}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.size = int(size)
        self.quantum = float(quantum)
        self._samples: deque[float] = deque(maxlen=self.size)
        self._bin_counts: dict[int, int] = {}
        self.total_recorded = 0
        self.version = 0

    def record(self, value: float) -> None:
        """Append one sample, evicting the oldest once full."""
        value = float(value)
        if len(self._samples) == self.size:
            evicted_bin = quantize_bin(self._samples[0], self.quantum)
            remaining = self._bin_counts[evicted_bin] - 1
            if remaining:
                self._bin_counts[evicted_bin] = remaining
            else:
                del self._bin_counts[evicted_bin]
        self._samples.append(value)
        new_bin = quantize_bin(value, self.quantum)
        self._bin_counts[new_bin] = self._bin_counts.get(new_bin, 0) + 1
        self.total_recorded += 1
        self.version += 1

    def extend(self, values) -> None:
        for value in values:
            self.record(value)

    def samples(self) -> list[float]:
        """Snapshot of the window contents, oldest first."""
        return list(self._samples)

    def histogram(self, quantum: float) -> Optional[tuple[int, np.ndarray]]:
        """``(offset, counts)`` of the maintained histogram, or ``None``.

        ``None`` means the caller's quantum does not match this window's
        grid (or the window is empty) and it must fall back to binning the
        raw samples itself.  The counts array is freshly allocated, so the
        caller may hand it to :class:`~repro.stats.pmf.DiscretePmf` safely.
        """
        if not self._bin_counts or abs(quantum - self.quantum) > 1e-15:
            return None
        low = min(self._bin_counts)
        high = max(self._bin_counts)
        counts = np.zeros(high - low + 1, dtype=float)
        for bin_index, count in self._bin_counts.items():
            counts[bin_index - low] = count
        return low, counts

    @property
    def latest(self) -> Optional[float]:
        return self._samples[-1] if self._samples else None

    @property
    def full(self) -> bool:
        return len(self._samples) == self.size

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of an empty window")
        return sum(self._samples) / len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._bin_counts.clear()
        self.version += 1

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlidingWindow(size={self.size}, n={len(self._samples)})"


class PairWindow:
    """A sliding window of ``(count, duration)`` pairs.

    Used for the update-arrival-rate estimate of §5.4.1: the client records
    a history of ``<n_u, t_u>`` pairs and computes
    ``lambda_u = sum(n_u) / sum(t_u)`` over the window.  The sums are
    maintained incrementally (updated on record and evict) so
    :meth:`rate` is O(1) — it sits on the staleness-factor path evaluated
    once per read.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size!r}")
        self.size = int(size)
        self._pairs: deque[tuple[int, float]] = deque(maxlen=self.size)
        self._count_sum = 0
        self._time_sum = 0.0
        self.version = 0

    def record(self, count: int, duration: float) -> None:
        if count < 0:
            raise ValueError(f"negative count {count!r}")
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        evicting = len(self._pairs) == self.size
        if evicting:
            self._count_sum -= self._pairs[0][0]
        count = int(count)
        duration = float(duration)
        self._pairs.append((count, duration))
        self._count_sum += count
        if evicting:
            # Subtracting the evicted duration incrementally leaves float
            # residue (catastrophic after a large entry leaves a small
            # window, and non-zero when the true sum is exactly zero).
            # The window is small, so re-sum the visible durations; the
            # counts stay incremental — integer arithmetic is exact.
            self._time_sum = sum(t for _, t in self._pairs)
        else:
            self._time_sum += duration
        self.version += 1

    def rate(self, default: float = 0.0) -> float:
        """``sum(counts) / sum(durations)``, or ``default`` if no time yet."""
        if not self._pairs or self._time_sum <= 0:
            return default
        return self._count_sum / self._time_sum

    def pairs(self) -> list[tuple[int, float]]:
        return list(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairWindow(size={self.size}, n={len(self._pairs)})"
