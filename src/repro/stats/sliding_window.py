"""Bounded most-recent-sample windows.

§5.2: "The client handlers record the most recent ``l`` measurements of
these parameters in separate sliding windows in an information repository.
The size of the sliding window, ``l``, is chosen so as to include a
reasonable number of recently measured values, while eliminating obsolete
measurements."
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional


class SlidingWindow:
    """Keeps the most recent ``size`` float samples in arrival order."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size!r}")
        self.size = int(size)
        self._samples: deque[float] = deque(maxlen=self.size)
        self.total_recorded = 0

    def record(self, value: float) -> None:
        """Append one sample, evicting the oldest once full."""
        self._samples.append(float(value))
        self.total_recorded += 1

    def extend(self, values) -> None:
        for value in values:
            self.record(value)

    def samples(self) -> list[float]:
        """Snapshot of the window contents, oldest first."""
        return list(self._samples)

    @property
    def latest(self) -> Optional[float]:
        return self._samples[-1] if self._samples else None

    @property
    def full(self) -> bool:
        return len(self._samples) == self.size

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of an empty window")
        return sum(self._samples) / len(self._samples)

    def clear(self) -> None:
        self._samples.clear()

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlidingWindow(size={self.size}, n={len(self._samples)})"


class PairWindow:
    """A sliding window of ``(count, duration)`` pairs.

    Used for the update-arrival-rate estimate of §5.4.1: the client records
    a history of ``<n_u, t_u>`` pairs and computes
    ``lambda_u = sum(n_u) / sum(t_u)`` over the window.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size!r}")
        self.size = int(size)
        self._pairs: deque[tuple[int, float]] = deque(maxlen=self.size)

    def record(self, count: int, duration: float) -> None:
        if count < 0:
            raise ValueError(f"negative count {count!r}")
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        self._pairs.append((int(count), float(duration)))

    def rate(self, default: float = 0.0) -> float:
        """``sum(counts) / sum(durations)``, or ``default`` if no time yet."""
        total_count = sum(c for c, _ in self._pairs)
        total_time = sum(t for _, t in self._pairs)
        if total_time <= 0:
            return default
        return total_count / total_time

    def pairs(self) -> list[tuple[int, float]]:
        return list(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairWindow(size={self.size}, n={len(self._pairs)})"
