"""Binomial proportion confidence intervals.

§6: "All confidence intervals for the results presented are at a 95 % level,
and have been computed under the assumption that the number of timing
failures follows a binomial distribution."  The experiment harness reports
the same intervals.  We provide both the textbook normal approximation the
paper's citation (Johnson/Kotz/Kemp) describes and the better-behaved
Wilson score interval for small failure counts.
"""

from __future__ import annotations

import math

# Two-sided z quantiles for common confidence levels.
_Z_TABLE = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


def _z_for(level: float) -> float:
    try:
        return _Z_TABLE[round(level, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {level!r}; "
            f"supported: {sorted(_Z_TABLE)}"
        ) from None


def binomial_confidence_interval(
    successes: int, trials: int, level: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation (Wald) interval for a binomial proportion.

    Returns ``(low, high)`` clamped to ``[0, 1]``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes!r} outside [0, {trials}]")
    z = _z_for(level)
    p = successes / trials
    half = z * math.sqrt(p * (1.0 - p) / trials)
    return (max(0.0, p - half), min(1.0, p + half))


def wilson_interval(
    successes: int, trials: int, level: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval; preferable when successes is near 0 or n."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes!r} outside [0, {trials}]")
    z = _z_for(level)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / trials + z2 / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


def intervals_overlap(
    a: tuple[float, float], b: tuple[float, float]
) -> bool:
    """Do two (low, high) intervals share at least one point?"""
    return a[0] <= b[1] and b[0] <= a[1]


def proportions_agree(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    level: float = 0.95,
) -> bool:
    """Two observed proportions agree when their Wilson intervals overlap.

    The acceptance test of the aggregated client tier: a modeled
    probability (timing failure, deferral, a response-CDF point) counts
    as matching the discrete simulator's when the score intervals of the
    two samples intersect.  Zero-trial samples carry no evidence and are
    treated as agreeing.
    """
    if trials_a <= 0 or trials_b <= 0:
        return True
    return intervals_overlap(
        wilson_interval(successes_a, trials_a, level),
        wilson_interval(successes_b, trials_b, level),
    )
