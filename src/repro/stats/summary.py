"""Running summaries and percentile helpers for experiment reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class RunningSummary:
    """Welford-style online mean/variance plus min/max and count."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty summary")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance; zero for fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningSummary") -> "RunningSummary":
        """Combine two summaries (parallel aggregation of repetitions)."""
        merged = RunningSummary()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * (other.count / merged.count)
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "RunningSummary(empty)"
        return (
            f"RunningSummary(n={self.count}, mean={self._mean:.6f}, "
            f"sd={self.stddev:.6f}, min={self.minimum:.6f}, max={self.maximum:.6f})"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile level {q!r} outside [0, 100]")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # a + frac * (b - a) is exact when a == b (the symmetric weighted form
    # can wobble below min/max by one ulp).
    return ordered[low] + frac * (ordered[high] - ordered[low])
