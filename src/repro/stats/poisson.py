"""Poisson distribution helpers.

Equation 4 of the paper models the number of update requests received by
the primary group since the last lazy update as Poisson with rate
``lambda_u``:

    P(A_s(t) <= a) = P(N_u(t_l) <= a) = sum_{n=0}^{a} (lam*t_l)^n e^{-lam*t_l} / n!

``poisson_cdf`` computes the sum with an incremental term recurrence so it
stays numerically stable for the small thresholds the QoS model uses.
"""

from __future__ import annotations

import math


def poisson_pmf(n: int, mean: float) -> float:
    """P(N = n) for N ~ Poisson(mean)."""
    if n < 0:
        raise ValueError(f"negative count {n!r}")
    if mean < 0:
        raise ValueError(f"negative mean {mean!r}")
    if mean == 0:
        return 1.0 if n == 0 else 0.0
    log_p = -mean + n * math.log(mean) - math.lgamma(n + 1)
    return math.exp(log_p)


def poisson_cdf(a: int, mean: float) -> float:
    """P(N <= a) for N ~ Poisson(mean); Equation 4 with mean = lambda_u * t_l."""
    if mean < 0:
        raise ValueError(f"negative mean {mean!r}")
    if a < 0:
        return 0.0
    if mean == 0:
        return 1.0
    # Recurrence: term_{n} = term_{n-1} * mean / n, term_0 = e^{-mean}.
    term = math.exp(-mean)
    total = term
    for n in range(1, a + 1):
        term *= mean / n
        total += term
    return min(1.0, total)


def poisson_quantile(q: float, mean: float) -> int:
    """Smallest a with P(N <= a) >= q (used by adaptive-LUI extensions)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level {q!r} outside [0, 1]")
    if mean < 0:
        raise ValueError(f"negative mean {mean!r}")
    if mean == 0 or q == 0.0:
        return 0
    a = 0
    total = math.exp(-mean)
    term = total
    # The loop bound is generous; Poisson tail decays super-exponentially.
    limit = int(mean + 20 * math.sqrt(mean) + 20)
    while total < q and a < limit:
        a += 1
        term *= mean / a
        total += term
    return a
