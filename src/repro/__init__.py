"""Reproduction of Krishnamurthy, Sanders & Cukier (DSN 2002).

``repro`` implements the adaptive framework for tunable consistency and
timeliness described in the paper, together with every substrate it needs:
a discrete-event simulation kernel (:mod:`repro.sim`), a simulated network
(:mod:`repro.net`), a Maestro/Ensemble-style group-communication layer
(:mod:`repro.groups`), the probability toolbox (:mod:`repro.stats`), the
middleware itself (:mod:`repro.core`), baselines (:mod:`repro.baselines`),
example applications (:mod:`repro.apps`), workloads
(:mod:`repro.workloads`), and the experiment harness
(:mod:`repro.experiments`).

The most convenient entry point for building a replicated service is
:class:`repro.core.service.ReplicatedService`; see ``examples/quickstart.py``.
The commonly used names are re-exported lazily here, so ``import repro``
stays cheap for tools that only need a substrate.
"""

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "QoSSpec",
    "OrderingGuarantee",
    "ReplicatedService",
    "ServiceConfig",
    "__version__",
]

_LAZY_EXPORTS = {
    "QoSSpec": ("repro.core.qos", "QoSSpec"),
    "OrderingGuarantee": ("repro.core.qos", "OrderingGuarantee"),
    "ReplicatedService": ("repro.core.service", "ReplicatedService"),
    "ServiceConfig": ("repro.core.service", "ServiceConfig"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
