"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure3`` — selection-algorithm overhead (Figure 3);
* ``figure4`` — adaptivity sweep, both panels (Figure 4);
* ``ablations`` — the A1–A9 parameter/baseline/failure/extension studies;
* ``validation`` — staleness-model calibration + hot-spot avoidance;
* ``chaos`` — seeded fault campaigns audited by consistency invariants;
* ``overload`` — load-storm campaigns: shedding vs. unbounded queues;
* ``adaptive`` — closed-loop SLA guardian vs. a static consistency grid;
* ``gray`` — gray-failure campaigns: φ-accrual detection vs. fixed timeouts;
* ``metrics`` — one instrumented cell: telemetry + calibration report;
* ``dash`` — sparkline/SLO dashboard over a timeline artifact (``--watch``
  for a live view, ``--html`` for a self-contained report);
* ``bench-diff`` — gate BENCH_*.json results against committed baselines;
* ``speedup`` — warm-worker runner throughput at several ``--jobs`` levels;
* ``scale`` — million-user cells via the aggregated (fluid) client tier,
  with ``--validate`` checking it against the discrete simulator;
* ``info`` — reproduction summary and module inventory.

``--quick`` runs reduced sweeps everywhere it is meaningful.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional


def _cmd_figure3(args: argparse.Namespace) -> None:
    from repro.experiments import figure3

    argv = []
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    figure3.main(argv)


def _jobs_argv(args: argparse.Namespace) -> list[str]:
    return ["--jobs", str(args.jobs)] if args.jobs != 1 else []


def _cmd_figure4(args: argparse.Namespace) -> None:
    from repro.experiments import figure4

    argv = ["--quick"] if args.quick else []
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    figure4.main(argv + _jobs_argv(args))


def _cmd_ablations(args: argparse.Namespace) -> None:
    from repro.experiments import ablations

    argv = ["--quick"] if args.quick else []
    ablations.main(argv + _jobs_argv(args))


def _cmd_validation(args: argparse.Namespace) -> None:
    from repro.experiments import validation

    argv = ["--quick"] if args.quick else []
    validation.main(argv + _jobs_argv(args))


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import chaos

    argv = ["--seeds", str(args.seeds), "--seed", str(args.seed)]
    if args.quick:
        argv.append("--quick")
    if args.membership_outage:
        argv.append("--membership-outage")
    if args.no_retry:
        argv.append("--no-retry")
    if args.duration is not None:
        argv += ["--duration", str(args.duration)]
    if args.membership_outage_weight is not None:
        argv += ["--membership-outage-weight", str(args.membership_outage_weight)]
    if args.overload_window is not None:
        argv += ["--overload-window"] + [str(v) for v in args.overload_window]
    if args.load_storm_weight is not None:
        argv += ["--load-storm-weight", str(args.load_storm_weight)]
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    if args.trace_dir:
        argv += ["--trace-dir", args.trace_dir]
    return chaos.main(argv)


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.experiments import overload

    argv = ["--seeds", str(args.seeds), "--seed", str(args.seed)]
    if args.quick:
        argv.append("--quick")
    if args.duration is not None:
        argv += ["--duration", str(args.duration)]
    if args.check:
        argv.append("--check")
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    if args.trace_dir:
        argv += ["--trace-dir", args.trace_dir]
    return overload.main(argv + _jobs_argv(args))


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.experiments import adaptive

    argv = ["--seeds", str(args.seeds), "--seed", str(args.seed)]
    if args.quick:
        argv.append("--quick")
    if args.duration is not None:
        argv += ["--duration", str(args.duration)]
    if args.check:
        argv.append("--check")
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    if args.trace_dir:
        argv += ["--trace-dir", args.trace_dir]
    return adaptive.main(argv + _jobs_argv(args))


def _cmd_gray(args: argparse.Namespace) -> int:
    from repro.experiments import gray

    argv = ["--seeds", str(args.seeds), "--seed", str(args.seed)]
    if args.quick:
        argv.append("--quick")
    if args.duration is not None:
        argv += ["--duration", str(args.duration)]
    if args.check:
        argv.append("--check")
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    if args.trace_dir:
        argv += ["--trace-dir", args.trace_dir]
    return gray.main(argv + _jobs_argv(args))


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.experiments import telemetry

    argv = []
    if args.quick:
        argv.append("--quick")
    for flag, value in (
        ("--deadline-ms", args.deadline_ms),
        ("--pc", args.pc),
        ("--lui", args.lui),
        ("--requests", args.requests),
        ("--seed", args.seed),
        ("--watch", args.watch),
        ("--metrics-out", args.metrics_out),
        ("--timeline-out", args.timeline_out),
        ("--prometheus", args.prometheus),
    ):
        if value is not None:
            argv += [flag, str(value)]
    if args.check:
        argv.append("--check")
    return telemetry.main(argv)


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.experiments import dashboard

    argv = [args.input]
    for item in args.select or []:
        argv += ["--select", item]
    for flag, value in (
        ("--objective", args.objective),
        ("--staleness-bound", args.staleness_bound),
        ("--watch", args.watch),
        ("--iterations", args.iterations),
        ("--html", args.html),
        ("--width", args.width),
        ("--top", args.top),
    ):
        if value is not None:
            argv += [flag, str(value)]
    return dashboard.main(argv)


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.experiments import benchdiff

    argv = []
    if args.current:
        argv += ["--current", args.current]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.max_regression is not None:
        argv += ["--max-regression", str(args.max_regression)]
    if args.update:
        argv.append("--update")
    return benchdiff.main(argv)


def _cmd_speedup(args: argparse.Namespace) -> int:
    from repro.experiments import speedup

    argv = []
    if args.jobs_levels:
        argv += ["--jobs-levels", args.jobs_levels]
    if args.out:
        argv += ["--out", args.out]
    if args.check:
        argv.append("--check")
    if args.min_speedup is not None:
        argv += ["--min-speedup", str(args.min_speedup)]
    if args.check_jobs is not None:
        argv += ["--check-jobs", str(args.check_jobs)]
    return speedup.main(argv)


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.experiments import scale

    argv = []
    if args.validate:
        argv.append("--validate")
    if args.smoke:
        argv.append("--smoke")
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    if args.users:
        argv += ["--users", args.users]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.save:
        argv += ["--save", args.save]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    return scale.main(argv + _jobs_argv(args))


def _cmd_info(args: argparse.Namespace) -> None:
    import repro

    print(f"repro {repro.__version__} — reproduction of:")
    print("  Krishnamurthy, Sanders, Cukier: 'An Adaptive Framework for")
    print("  Tunable Consistency and Timeliness Using Replication' (DSN 2002)")
    print()
    print("subsystems:")
    for module, summary in [
        ("repro.sim", "deterministic discrete-event simulation kernel"),
        ("repro.net", "simulated LAN: latency models, crashes, partitions"),
        ("repro.groups", "group communication (views, leader, reliable FIFO)"),
        ("repro.stats", "pmfs/convolution, Poisson CDF, binomial CIs"),
        ("repro.core", "the paper's middleware: QoS model, sequential/FIFO/"
                       "causal handlers, probabilistic selection (Algorithm 1)"),
        ("repro.baselines", "naive selection strategies for comparison"),
        ("repro.apps", "KV store, shared document, stock ticker"),
        ("repro.workloads", "closed-loop §6 clients, open-loop generators, "
                            "aggregated fluid client tier"),
        ("repro.obs", "telemetry: metrics registry, span trees, calibration"),
        ("repro.experiments", "figure/ablation/validation harnesses"),
    ]:
        print(f"  {module:20s} {summary}")
    print()
    print("see DESIGN.md for the experiment index and EXPERIMENTS.md for")
    print("paper-vs-measured results.")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and studies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p3 = sub.add_parser("figure3", help="selection overhead (Figure 3)")
    p3.add_argument("--save", metavar="PATH", help="write results as JSON")
    p3.add_argument(
        "--metrics-out", metavar="PATH", help="write telemetry as JSONL"
    )
    p3.set_defaults(func=_cmd_figure3)

    jobs_help = "worker processes for independent cells (0 = all cores)"

    p4 = sub.add_parser("figure4", help="adaptivity sweep (Figure 4)")
    p4.add_argument("--quick", action="store_true")
    p4.add_argument("--save", metavar="PATH", help="write results as JSON")
    p4.add_argument(
        "--metrics-out", metavar="PATH", help="write telemetry as JSONL"
    )
    p4.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    p4.set_defaults(func=_cmd_figure4)

    pa = sub.add_parser("ablations", help="A1-A9 parameter studies")
    pa.add_argument("--quick", action="store_true")
    pa.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    pa.set_defaults(func=_cmd_ablations)

    pv = sub.add_parser("validation", help="model calibration + hot spots")
    pv.add_argument("--quick", action="store_true")
    pv.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    pv.set_defaults(func=_cmd_validation)

    pc = sub.add_parser(
        "chaos", help="seeded fault campaigns + consistency invariants"
    )
    pc.add_argument("--seeds", type=int, default=10, metavar="N")
    pc.add_argument("--seed", type=int, default=0, help="base seed")
    pc.add_argument("--duration", type=float, default=None, metavar="SECONDS")
    pc.add_argument("--quick", action="store_true")
    pc.add_argument("--membership-outage", action="store_true")
    pc.add_argument("--no-retry", action="store_true")
    pc.add_argument(
        "--membership-outage-weight",
        type=float,
        default=None,
        metavar="W",
        help="membership-outage weight (implies --membership-outage when > 0)",
    )
    pc.add_argument(
        "--overload-window",
        type=float,
        nargs=2,
        default=None,
        metavar=("LOW", "HIGH"),
        help="host-overload window bounds in seconds",
    )
    pc.add_argument(
        "--load-storm-weight",
        type=float,
        default=None,
        metavar="W",
        help="traffic-burst (load-storm) weight in the fault mix",
    )
    pc.add_argument("--save", metavar="PATH", help="write results as JSON")
    pc.add_argument(
        "--metrics-out", metavar="PATH", help="write telemetry as JSONL"
    )
    pc.add_argument(
        "--trace-dir", metavar="DIR", help="dump traces of violating campaigns"
    )
    pc.set_defaults(func=_cmd_chaos)

    po = sub.add_parser(
        "overload", help="load storms: shedding ladder vs. unbounded queues"
    )
    po.add_argument("--seeds", type=int, default=5, metavar="N")
    po.add_argument("--seed", type=int, default=0, help="base seed")
    po.add_argument("--duration", type=float, default=None, metavar="SECONDS")
    po.add_argument("--quick", action="store_true")
    po.add_argument(
        "--check", action="store_true", help="exit non-zero on invariant breach"
    )
    po.add_argument("--save", metavar="PATH", help="write results as JSON")
    po.add_argument(
        "--metrics-out", metavar="PATH", help="write telemetry as JSONL"
    )
    po.add_argument(
        "--trace-dir", metavar="DIR", help="dump traces of violating campaigns"
    )
    po.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    po.set_defaults(func=_cmd_overload)

    pad = sub.add_parser(
        "adaptive",
        help="closed-loop SLA guardian vs. static knob grid",
    )
    pad.add_argument("--seeds", type=int, default=3, metavar="N")
    pad.add_argument("--seed", type=int, default=0, help="base seed")
    pad.add_argument("--duration", type=float, default=None, metavar="SECONDS")
    pad.add_argument("--quick", action="store_true")
    pad.add_argument(
        "--check", action="store_true", help="exit non-zero on invariant breach"
    )
    pad.add_argument("--save", metavar="PATH", help="write results as JSON")
    pad.add_argument(
        "--metrics-out", metavar="PATH", help="write telemetry as JSONL"
    )
    pad.add_argument(
        "--trace-dir", metavar="DIR", help="dump traces of violating campaigns"
    )
    pad.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    pad.set_defaults(func=_cmd_adaptive)

    pgr = sub.add_parser(
        "gray", help="gray failures: φ-accrual detector vs. fixed timeouts"
    )
    pgr.add_argument("--seeds", type=int, default=5, metavar="N")
    pgr.add_argument("--seed", type=int, default=0, help="base seed")
    pgr.add_argument("--duration", type=float, default=None, metavar="SECONDS")
    pgr.add_argument("--quick", action="store_true")
    pgr.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any invariant or acceptance violation",
    )
    pgr.add_argument("--save", metavar="PATH", help="write results as JSON")
    pgr.add_argument(
        "--metrics-out", metavar="PATH", help="write telemetry as JSONL"
    )
    pgr.add_argument(
        "--trace-dir", metavar="DIR", help="dump traces of violating campaigns"
    )
    pgr.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    pgr.set_defaults(func=_cmd_gray)

    pm = sub.add_parser(
        "metrics", help="instrumented cell: telemetry + calibration report"
    )
    pm.add_argument("--deadline-ms", type=int, default=None)
    pm.add_argument("--pc", type=float, default=None)
    pm.add_argument("--lui", type=float, default=None)
    pm.add_argument("--requests", type=int, default=None)
    pm.add_argument("--seed", type=int, default=None)
    pm.add_argument("--quick", action="store_true")
    pm.add_argument("--watch", type=float, default=None, metavar="SECONDS")
    pm.add_argument("--metrics-out", metavar="PATH")
    pm.add_argument(
        "--timeline-out", metavar="PATH",
        help="record a time series and write it as JSONL (repro dash input)",
    )
    pm.add_argument("--prometheus", metavar="PATH")
    pm.add_argument("--check", action="store_true")
    pm.set_defaults(func=_cmd_metrics)

    pd = sub.add_parser(
        "dash", help="sparkline/SLO dashboard over a timeline artifact"
    )
    pd.add_argument("input", help="JSONL artifact with timeline records")
    pd.add_argument(
        "--select", action="append", default=None, metavar="KEY=VALUE",
        help="pick the timeline record matching this field; repeatable",
    )
    pd.add_argument("--objective", type=float, default=None)
    pd.add_argument(
        "--staleness-bound", type=float, default=None, metavar="SECONDS"
    )
    pd.add_argument("--watch", type=float, default=None, metavar="SECONDS")
    pd.add_argument("--iterations", type=int, default=None, metavar="N")
    pd.add_argument("--html", metavar="PATH")
    pd.add_argument("--width", type=int, default=None)
    pd.add_argument("--top", type=int, default=None)
    pd.set_defaults(func=_cmd_dash)

    pb = sub.add_parser(
        "bench-diff", help="compare BENCH_*.json results against baselines"
    )
    pb.add_argument("--current", metavar="DIR", default=None)
    pb.add_argument("--baseline", metavar="DIR", default=None)
    pb.add_argument(
        "--max-regression", type=float, default=None, metavar="FRACTION"
    )
    pb.add_argument(
        "--update", action="store_true",
        help="refresh the baselines from the current results",
    )
    pb.set_defaults(func=_cmd_bench_diff)

    ps = sub.add_parser(
        "speedup", help="warm-worker runner throughput per --jobs level"
    )
    ps.add_argument(
        "--jobs-levels",
        metavar="N,M,...",
        default=None,
        help="comma-separated jobs levels to time (default 1,2,4)",
    )
    ps.add_argument("--out", metavar="PATH", help="write the timing table")
    ps.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if parallel speedup regresses (multi-core only)",
    )
    ps.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="required speedup for the gated jobs level (default 1.2)",
    )
    ps.add_argument(
        "--check-jobs", type=int, default=None, metavar="N",
        help="jobs level the gate applies to (default 2)",
    )
    ps.set_defaults(func=_cmd_speedup)

    pg = sub.add_parser(
        "scale", help="million-user cells via the aggregated client tier"
    )
    pg.add_argument(
        "--validate",
        action="store_true",
        help="compare aggregate vs discrete at N=100/1000 (Wilson overlap)",
    )
    pg.add_argument(
        "--smoke",
        action="store_true",
        help="CI shape: short N=100 validation + one 1M-user cell",
    )
    pg.add_argument("--quick", action="store_true")
    pg.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on disagreement or a blown wall-clock budget",
    )
    pg.add_argument(
        "--users",
        metavar="N,M,...",
        default=None,
        help="comma-separated population sizes for the scaling surface",
    )
    pg.add_argument("--seed", type=int, default=None)
    pg.add_argument("--save", metavar="PATH", help="write results JSON")
    pg.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the JSONL telemetry artifact (repro dash input)",
    )
    pg.add_argument("--jobs", type=int, default=1)
    pg.set_defaults(func=_cmd_scale)

    pi = sub.add_parser("info", help="reproduction summary")
    pi.set_defaults(func=_cmd_info)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
