"""GroupEndpoint: the base class for protocol participants.

A :class:`GroupEndpoint` is a network endpoint that

* maintains local copies of the views of every group it belongs to or
  watches, updated by :class:`~repro.groups.membership.ViewChangeMsg`;
* sends periodic heartbeats to the membership service so crashes are
  detected and evicted;
* offers reliable FIFO group messaging (``gmcast`` / ``gsend``) built on
  :mod:`repro.groups.multicast`;
* dispatches inbound traffic to overridable hooks:
  :meth:`on_group_message` (reliable FIFO payloads),
  :meth:`on_view_change`, and :meth:`on_message` (plain unicasts).

The middleware's gateway handlers (:mod:`repro.core`) all inherit from it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.groups.membership import (
    HeartbeatMsg,
    JoinMsg,
    LeaveMsg,
    MembershipService,
    View,
    ViewChangeMsg,
)
from repro.groups.multicast import (
    FifoReceiver,
    FifoSender,
    GroupAckMsg,
    GroupDataMsg,
)
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.net.node import Host


class GroupEndpoint(Endpoint):
    """A network endpoint that participates in membership-managed groups."""

    def __init__(
        self,
        name: str,
        membership: str = MembershipService.DEFAULT_NAME,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
    ) -> None:
        super().__init__(name)
        self.membership_name = membership
        self.heartbeat_interval = heartbeat_interval
        self._rto = rto
        self.views: dict[str, View] = {}
        self._joined: set[str] = set()
        self._sender: Optional[FifoSender] = None
        self._receiver: Optional[FifoReceiver] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attached(self, network: Network, host: Optional[Host]) -> None:
        super().attached(network, host)
        self._sender = FifoSender(
            self.sim, self.name, self._raw_send, rto=self._rto
        )
        self._receiver = FifoReceiver(self._fifo_deliver, self._fifo_ack)
        self.sim.schedule(self.heartbeat_interval, self._heartbeat)

    def _raw_send(self, recipient: str, payload: Any, size_bytes: int) -> None:
        self.send(recipient, payload, size_bytes)

    def _fifo_ack(self, origin: str, ack: GroupAckMsg) -> None:
        self.send(origin, ack, size_bytes=64)

    @property
    def up(self) -> bool:
        """False while this endpoint is crashed (timers should no-op)."""
        return self.network is not None and self.network.is_up(self.name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, group: str) -> None:
        """Join a group (asynchronously, via the membership service)."""
        self._joined.add(group)
        self.send(self.membership_name, JoinMsg(group, self.name), size_bytes=64)

    def assume_membership(self, group: str) -> None:
        """Mark this endpoint as a member without a join round-trip.

        Used by topology builders that register members directly with the
        membership service before the simulation starts; it arms the
        heartbeat path so crash detection works from t=0.
        """
        self._joined.add(group)

    def leave(self, group: str) -> None:
        self._joined.discard(group)
        self.send(self.membership_name, LeaveMsg(group, self.name), size_bytes=64)

    def adopt_view(self, view: View) -> None:
        """Install a view locally (initial wiring or ViewChangeMsg)."""
        previous = self.views.get(view.group)
        if previous is not None and previous.view_id >= view.view_id:
            return
        self.views[view.group] = view
        if self._sender is not None and previous is not None:
            for member in previous.members:
                if member not in view:
                    self._sender.forget_recipient(view.group, member)
            for member in view.members:
                if member not in previous and member != self.name:
                    # A newly (re)joined member: open a fresh channel
                    # epoch so it does not wait on sequence numbers from
                    # before its join/crash.
                    self._sender.reset_channel(view.group, member)
        self.on_view_change(view, previous)

    def view_of(self, group: str) -> View:
        view = self.views.get(group)
        if view is None:
            view = View(group, 0, ())
            self.views[group] = view
        return view

    def is_member(self, group: str) -> bool:
        return self.name in self.view_of(group)

    def _heartbeat(self) -> None:
        if self.network is None:
            return
        if self.up and self._joined:
            self.send(
                self.membership_name,
                HeartbeatMsg(self.name, tuple(sorted(self._joined))),
                size_bytes=64,
            )
        self.sim.schedule(self.heartbeat_interval, self._heartbeat)

    # ------------------------------------------------------------------
    # Reliable FIFO group messaging
    # ------------------------------------------------------------------
    def gmcast(self, group: str, payload: Any, size_bytes: int = 256) -> int:
        """Reliable FIFO multicast to the current view of ``group``.

        Returns the number of recipients (self excluded).
        """
        if self._sender is None:
            raise RuntimeError(f"{self.name} not attached")
        members = [m for m in self.view_of(group).members if m != self.name]
        self._sender.send_to_all(group, members, payload, size_bytes)
        return len(members)

    def gsend(
        self, group: str, member: str, payload: Any, size_bytes: int = 256
    ) -> None:
        """Reliable FIFO unicast to one member over the group channel."""
        if self._sender is None:
            raise RuntimeError(f"{self.name} not attached")
        self._sender.send(group, member, payload, size_bytes)

    @property
    def fifo_sender(self) -> FifoSender:
        if self._sender is None:
            raise RuntimeError(f"{self.name} not attached")
        return self._sender

    @property
    def fifo_receiver(self) -> FifoReceiver:
        if self._receiver is None:
            raise RuntimeError(f"{self.name} not attached")
        return self._receiver

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, ViewChangeMsg):
            self.adopt_view(payload.view)
        elif isinstance(payload, GroupDataMsg):
            assert self._receiver is not None
            self._receiver.on_data(payload)
        elif isinstance(payload, GroupAckMsg):
            assert self._sender is not None
            self._sender.on_ack(payload, message.sender)
        else:
            self.on_message(message)

    def _fifo_deliver(self, group: str, sender: str, payload: Any) -> None:
        self.on_group_message(group, sender, payload)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def on_group_message(self, group: str, sender: str, payload: Any) -> None:
        """Reliable FIFO payload from a fellow member.  Override."""

    def on_view_change(self, view: View, previous: Optional[View]) -> None:
        """A new view was installed.  Override for failover logic."""

    def on_message(self, message: Message) -> None:
        """A non-group unicast arrived.  Override."""
