"""Reliable per-pair FIFO messaging inside groups.

Guarantees (matching what the paper assumes from Maestro-Ensemble):

* **Reliable** — every message is acknowledged; unacknowledged messages are
  retransmitted with backoff until acked or the retry budget is exhausted
  (the membership layer will have evicted a dead receiver well before
  that).
* **FIFO** — between each (sender, receiver) pair within a group, messages
  are delivered in send order; out-of-order arrivals are buffered,
  duplicates suppressed (and re-acked, so lost acks recover).

Sequence numbers are per ``(group, sender, receiver)`` pair, so a member
that joins late starts a fresh channel instead of waiting for messages that
predate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.kernel import Event, Simulator


@dataclass(frozen=True)
class GroupDataMsg:
    """Application payload carried over a group FIFO channel.

    ``epoch`` versions the per-pair channel: when a member leaves and
    later rejoins a view, senders open a fresh epoch (sequence numbers
    restart at 1) so the rejoined receiver is not left waiting for
    messages that were dropped while it was down.
    """

    group: str
    origin: str
    seq: int
    payload: Any
    epoch: int = 0


@dataclass(frozen=True)
class GroupAckMsg:
    """Acknowledgement for one :class:`GroupDataMsg`."""

    group: str
    origin: str
    seq: int


@dataclass
class _Outstanding:
    recipient: str
    message: GroupDataMsg
    size_bytes: int
    retries: int = 0
    timer: Optional[Event] = None


class FifoSender:
    """Sender half: per-recipient sequencing, acks, retransmission."""

    def __init__(
        self,
        sim: Simulator,
        owner: str,
        send_raw: Callable[[str, Any, int], Any],
        rto: float = 0.05,
        max_retries: int = 20,
        backoff: float = 1.5,
    ) -> None:
        if rto <= 0:
            raise ValueError(f"rto must be positive, got {rto!r}")
        if max_retries < 0:
            raise ValueError(f"negative max_retries {max_retries!r}")
        self.sim = sim
        self.owner = owner
        self._send_raw = send_raw
        self.rto = rto
        self.max_retries = max_retries
        self.backoff = backoff
        self._next_seq: dict[tuple[str, str], int] = {}
        self._epochs: dict[tuple[str, str], int] = {}
        self._outstanding: dict[tuple[str, str, int], _Outstanding] = {}
        self.retransmissions = 0
        self.abandoned = 0

    def send(
        self, group: str, recipient: str, payload: Any, size_bytes: int = 256
    ) -> GroupDataMsg:
        """Reliably send ``payload`` to one group member."""
        key = (group, recipient)
        seq = self._next_seq.get(key, 0) + 1
        self._next_seq[key] = seq
        message = GroupDataMsg(
            group, self.owner, seq, payload, self._epochs.get(key, 0)
        )
        entry = _Outstanding(recipient, message, size_bytes)
        self._outstanding[(group, recipient, seq)] = entry
        self._transmit(entry)
        return message

    def send_to_all(
        self,
        group: str,
        recipients: list[str],
        payload: Any,
        size_bytes: int = 256,
    ) -> list[GroupDataMsg]:
        """Reliable FIFO multicast: one channel message per recipient."""
        return [
            self.send(group, recipient, payload, size_bytes)
            for recipient in recipients
            if recipient != self.owner
        ]

    def on_ack(self, ack: GroupAckMsg, from_member: str) -> None:
        entry = self._outstanding.pop((ack.group, from_member, ack.seq), None)
        if entry is not None and entry.timer is not None:
            entry.timer.cancel()

    def reset_channel(self, group: str, recipient: str) -> None:
        """Open a fresh channel epoch to a (re)joined member.

        Drops outstanding traffic and restarts sequence numbers at 1, so
        the receiver's fresh-epoch state lines up.
        """
        self.forget_recipient(group, recipient)
        key = (group, recipient)
        self._epochs[key] = self._epochs.get(key, 0) + 1
        self._next_seq[key] = 0

    def forget_recipient(self, group: str, recipient: str) -> None:
        """Drop outstanding traffic to an evicted member."""
        stale = [
            key
            for key in self._outstanding
            if key[0] == group and key[1] == recipient
        ]
        for key in stale:
            entry = self._outstanding.pop(key)
            if entry.timer is not None:
                entry.timer.cancel()

    @property
    def unacked(self) -> int:
        return len(self._outstanding)

    def _transmit(self, entry: _Outstanding) -> None:
        self._send_raw(entry.recipient, entry.message, entry.size_bytes)
        delay = self.rto * (self.backoff**entry.retries)
        entry.timer = self.sim.schedule(delay, self._retransmit, entry)

    def _retransmit(self, entry: _Outstanding) -> None:
        key = (entry.message.group, entry.recipient, entry.message.seq)
        if key not in self._outstanding:
            return
        if entry.retries >= self.max_retries:
            del self._outstanding[key]
            self.abandoned += 1
            # Giving up leaves a hole in the pair's sequence space that
            # would stall the receiver's FIFO forever; open a fresh epoch
            # so traffic resumes cleanly once the recipient is reachable.
            self.reset_channel(entry.message.group, entry.recipient)
            return
        entry.retries += 1
        self.retransmissions += 1
        self._transmit(entry)


class FifoReceiver:
    """Receiver half: dedupe, per-sender reordering, in-order delivery."""

    def __init__(
        self,
        deliver: Callable[[str, str, Any], None],
        ack: Callable[[str, GroupAckMsg], None],
    ) -> None:
        self._deliver = deliver
        self._ack = ack
        self._epoch: dict[tuple[str, str], int] = {}
        self._expected: dict[tuple[str, str], int] = {}
        self._buffer: dict[tuple[str, str], dict[int, Any]] = {}
        self.duplicates = 0
        self.reordered = 0
        self.stale_epoch_drops = 0

    def on_data(self, data: GroupDataMsg) -> None:
        # Always ack, including duplicates: the original ack may have been
        # lost, and re-acking is what stops the sender's retransmissions.
        self._ack(data.origin, GroupAckMsg(data.group, data.origin, data.seq))
        key = (data.group, data.origin)
        epoch = self._epoch.get(key)
        if epoch is None or data.epoch > epoch:
            # First contact, or the sender opened a fresh channel epoch
            # (we rejoined after a crash): start over from seq 1.
            self._epoch[key] = data.epoch
            self._expected[key] = 1
            self._buffer[key] = {}
        elif data.epoch < epoch:
            self.stale_epoch_drops += 1
            return
        expected = self._expected.get(key, 1)
        if data.seq < expected:
            self.duplicates += 1
            return
        buffer = self._buffer.setdefault(key, {})
        if data.seq in buffer:
            self.duplicates += 1
            return
        buffer[data.seq] = data.payload
        if data.seq != expected:
            self.reordered += 1
        while expected in buffer:
            payload = buffer.pop(expected)
            expected += 1
            self._expected[key] = expected
            self._deliver(data.group, data.origin, payload)

    def pending_for(self, group: str, sender: str) -> int:
        """Buffered-but-undeliverable message count (tests/diagnostics)."""
        return len(self._buffer.get((group, sender), {}))
