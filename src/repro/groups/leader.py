"""Deterministic rank-based leader election.

Ensemble "elects one of the members of the group as the leader"; rank order
(join order, preserved across views) makes this deterministic: the leader
is always the lowest-ranked live member.  Because every member learns the
same view from the membership service, all members agree on the leader
without extra messages.
"""

from __future__ import annotations

from typing import Optional

from repro.groups.membership import View


def leader_of(view: View) -> Optional[str]:
    """The leader of a view (rank-0 member), or None for an empty view."""
    return view.leader


def is_leader(view: View, member: str) -> bool:
    """True iff ``member`` leads ``view``."""
    return view.leader == member


def successor_leader(view: View, failed: str) -> Optional[str]:
    """The member that leads once ``failed`` is evicted from ``view``."""
    for member in view.members:
        if member != failed:
            return member
    return None
