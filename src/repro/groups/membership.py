"""Group membership: views, joins/leaves, heartbeat-based crash eviction.

Members join named groups through a :class:`MembershipService` endpoint
(the stand-in for the Ensemble stack).  The service installs a new
:class:`View` — an immutable, rank-ordered member list with a monotonically
increasing view id — whenever membership changes, and multicasts it to all
members of the group (plus any observers).

Crash detection: members periodically send heartbeats (scheduled by
:class:`~repro.groups.group.GroupEndpoint`); the service sweeps for members
whose last heartbeat is older than ``suspect_timeout`` and evicts them.
Rank order (= join order) is preserved across views, which makes leader
election deterministic (:mod:`repro.groups.leader`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.sim.tracing import NULL_TRACE, Trace


@dataclass(frozen=True)
class View:
    """An installed membership view: ordered member names + view id."""

    group: str
    view_id: int
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.view_id < 0:
            raise ValueError(f"negative view id {self.view_id!r}")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in view: {self.members!r}")

    @property
    def leader(self) -> Optional[str]:
        """The rank-0 member, or None for an empty view."""
        return self.members[0] if self.members else None

    def rank_of(self, member: str) -> int:
        """0-based rank; raises ValueError if not a member."""
        return self.members.index(member)

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)


# ---------------------------------------------------------------------------
# Wire payloads
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JoinMsg:
    group: str
    member: str


@dataclass(frozen=True)
class LeaveMsg:
    group: str
    member: str


@dataclass(frozen=True)
class HeartbeatMsg:
    member: str
    groups: tuple[str, ...]


@dataclass(frozen=True)
class ViewChangeMsg:
    view: View


@dataclass
class MembershipConfig:
    """Tuning knobs for the failure detector."""

    heartbeat_interval: float = 0.25
    suspect_timeout: float = 1.0
    sweep_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspect_timeout <= self.heartbeat_interval:
            raise ValueError("suspect_timeout must exceed heartbeat_interval")
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")


class MembershipService(Endpoint):
    """Central membership coordinator (the Ensemble-stack stand-in).

    It is an ordinary network endpoint: joins, leaves, and heartbeats reach
    it as messages, and views are installed by multicasting
    :class:`ViewChangeMsg` to members.  It can itself be crashed by the
    fault injector to study membership-service outages.
    """

    DEFAULT_NAME = "membership"

    def __init__(
        self,
        name: str = DEFAULT_NAME,
        config: Optional[MembershipConfig] = None,
        trace: Trace = NULL_TRACE,
    ) -> None:
        super().__init__(name)
        self.config = config or MembershipConfig()
        self.trace = trace
        self._views: dict[str, View] = {}
        self._last_heartbeat: dict[str, float] = {}
        self._observers: list[Callable[[View], None]] = []
        self._watchers: dict[str, set[str]] = {}
        # Set while the service itself is crashed, so the first sweep
        # after it recovers grants heartbeat amnesty instead of
        # mass-evicting every member whose heartbeats it slept through.
        self._amnesty_pending = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attached(self, network: Network, host) -> None:
        super().attached(network, host)
        self._schedule_sweep()

    def _schedule_sweep(self) -> None:
        self.sim.schedule(self.config.sweep_interval, self._sweep)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def view_of(self, group: str) -> View:
        """Current view of ``group`` (empty view if never joined)."""
        view = self._views.get(group)
        if view is None:
            view = View(group, 0, ())
            self._views[group] = view
        return view

    def groups(self) -> list[str]:
        return sorted(self._views)

    def observe(self, callback: Callable[[View], None]) -> None:
        """Invoke ``callback`` on every installed view (for experiments)."""
        self._observers.append(callback)

    def watch(self, group: str, endpoint: str) -> None:
        """Deliver future view changes of ``group`` to a non-member.

        Clients watch the replica groups they select from; primaries watch
        the secondary group they lazily update, and vice versa.
        """
        self._watchers.setdefault(group, set()).add(endpoint)

    # ------------------------------------------------------------------
    # Local API (used for initial wiring before the simulation starts)
    # ------------------------------------------------------------------
    def register(self, group: str, member: str) -> View:
        """Synchronously add a member (initial topology construction)."""
        return self._admit(group, member)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, JoinMsg):
            self._admit(payload.group, payload.member)
        elif isinstance(payload, LeaveMsg):
            self._evict(payload.group, payload.member, reason="leave")
        elif isinstance(payload, HeartbeatMsg):
            self._last_heartbeat[payload.member] = self.now
        # Unknown payloads are ignored: the service is deaf to app traffic.

    def _admit(self, group: str, member: str) -> View:
        view = self.view_of(group)
        if member in view:
            return view
        new_view = View(group, view.view_id + 1, view.members + (member,))
        self._install(new_view)
        # A fresh member gets heartbeat credit so it is not evicted before
        # its first heartbeat fires.
        now = self.now if self.network is not None else 0.0
        self._last_heartbeat.setdefault(member, now)
        return new_view

    def _evict(self, group: str, member: str, reason: str) -> None:
        view = self.view_of(group)
        if member not in view:
            return
        members = tuple(m for m in view.members if m != member)
        new_view = View(group, view.view_id + 1, members)
        self.trace.emit(
            self.now if self.network else 0.0,
            "membership.evict",
            member,
            group=group,
            reason=reason,
        )
        self._install(new_view)

    def _install(self, view: View) -> None:
        self._views[view.group] = view
        for observer in self._observers:
            observer(view)
        if self.network is None:
            return
        self.trace.emit(
            self.now,
            "membership.view",
            view.group,
            view_id=view.view_id,
            members=list(view.members),
        )
        recipients = set(view.members) | self._watchers.get(view.group, set())
        self.multicast(sorted(recipients), ViewChangeMsg(view))

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        if self.network is not None and self.network.is_up(self.name):
            if self._amnesty_pending:
                # The service just recovered from an outage during which
                # no heartbeat could reach it.  Members are only as stale
                # as their *delivery* gap, not their liveness: reset the
                # clock for everyone and let the next sweeps re-detect the
                # genuinely dead (they stay silent; the live re-heartbeat
                # within one heartbeat interval).
                self._amnesty_pending = False
                for member in self._last_heartbeat:
                    self._last_heartbeat[member] = max(
                        self._last_heartbeat[member], self.now
                    )
                self.trace.emit(
                    self.now,
                    "membership.amnesty",
                    self.name,
                    members=sorted(self._last_heartbeat),
                )
            deadline = self.now - self.config.suspect_timeout
            suspects = [
                member
                for member, seen in self._last_heartbeat.items()
                if seen < deadline
            ]
            for member in suspects:
                del self._last_heartbeat[member]
                for group in list(self._views):
                    self._evict(group, member, reason="suspected")
        elif self.network is not None:
            self._amnesty_pending = True
        self._schedule_sweep()
