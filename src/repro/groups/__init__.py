"""Group-communication substrate (Maestro/Ensemble stand-in).

The paper's middleware "depend[s] on Maestro-Ensemble to provide reliable,
virtual synchrony, and FIFO messaging guarantees ... and to inform the
group members when changes in the group membership occur", with a leader
elected per group.  This package provides exactly those guarantees over the
simulated network:

* :mod:`repro.groups.membership` — views and a membership service that
  installs new views on join/leave/crash (detected via heartbeats);
* :mod:`repro.groups.multicast` — reliable (ack + retransmit), per-sender
  FIFO group multicast with duplicate suppression;
* :mod:`repro.groups.leader` — deterministic rank-based leader election;
* :mod:`repro.groups.group` — :class:`GroupEndpoint`, the base class
  protocol handlers inherit to participate in groups.
"""

from repro.groups.membership import MembershipConfig, MembershipService, View
from repro.groups.leader import leader_of
from repro.groups.group import GroupEndpoint

__all__ = [
    "MembershipConfig",
    "MembershipService",
    "View",
    "leader_of",
    "GroupEndpoint",
]
