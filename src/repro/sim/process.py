"""Generator-based processes on top of the event kernel.

A process is a Python generator driven by the simulator.  It may yield:

* :class:`Timeout` — suspend for a virtual-time delay;
* :class:`Signal` — suspend until someone calls :meth:`Signal.fire`, which
  resumes every waiter with the fired value;
* another :class:`Process` — suspend until that process terminates, and
  receive its return value.

Processes can be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current suspension point —
the idiom used by the client-side timing-failure detector and by failure
injection.

Example::

    def client(sim):
        yield Timeout(1.0)          # think time
        reply = yield request_sent  # wait for a signal
        return reply

    sim = Simulator()
    proc = Process(sim, client(sim))
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.sim.kernel import Event, SimulationError, Simulator


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Yieldable delay.  ``yield Timeout(0.5)`` suspends for half a second."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = delay
        self.value = value


class Signal:
    """A broadcast condition variable for processes.

    Any number of processes may wait on one signal; :meth:`fire` resumes all
    of them with the fired value.  A signal may fire multiple times; each
    firing wakes only the processes waiting at that moment.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0
        self.last_value: Any = None

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``; returns how many woke."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        self.last_value = value
        for proc in waiters:
            proc._resume(value)
        return len(waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Process:
    """Drives a generator as a simulation process.

    The process starts on the next simulator step (a zero-delay event), so
    constructing processes before ``sim.run()`` behaves intuitively.  When
    the generator returns, :attr:`result` holds its return value and any
    processes joined on it are resumed.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.pid = next(Process._ids)
        self.name = name or f"proc-{self.pid}"
        self._gen = generator
        self._alive = True
        self._pending_event: Optional[Event] = None
        self._waiting_on: Optional[Signal] = None
        self.result: Any = None
        self._done_signal = Signal(f"{self.name}.done")
        self._pending_event = sim.schedule(0.0, self._resume, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._alive

    @property
    def done_signal(self) -> Signal:
        """Signal fired (with the return value) when the process finishes."""
        return self._done_signal

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point."""
        if not self._alive:
            return
        self._detach()
        self._step(Interrupt(cause), throw=True)

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._detach()
        self._step(value, throw=False)

    def _detach(self) -> None:
        """Drop whatever the process is currently waiting on."""
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                yielded = self._gen.throw(value)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # An un-caught interrupt terminates the process quietly.
            self._finish(None)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._pending_event = self.sim.schedule(
                yielded.delay, self._resume, yielded.value
            )
        elif isinstance(yielded, Signal):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            if yielded._alive:
                self._waiting_on = yielded._done_signal
                yielded._done_signal._add_waiter(self)
            else:
                self._pending_event = self.sim.schedule(
                    0.0, self._resume, yielded.result
                )
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {yielded!r}"
            )

    def _finish(self, result: Any) -> None:
        self._alive = False
        self.result = result
        self._done_signal.fire(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


def all_of(sim: Simulator, processes: Iterable[Process]) -> Process:
    """Return a process that finishes when every given process has finished.

    Its result is the list of individual results, in input order.
    """
    procs = list(processes)

    def waiter() -> Generator:
        results = []
        for proc in procs:
            if proc.alive:
                yield proc
            results.append(proc.result)
        return results

    return Process(sim, waiter(), name="all_of")
