"""Discrete-event simulation substrate.

The paper evaluated its middleware on a LAN of Linux hosts; this package is
the stand-in testbed.  It provides a deterministic event-driven simulator
(:mod:`repro.sim.kernel`), generator-based processes
(:mod:`repro.sim.process`), reproducible named random streams and delay
distributions (:mod:`repro.sim.rng`), Lamport logical clocks and version
stamps (:mod:`repro.sim.clock`), and structured tracing
(:mod:`repro.sim.tracing`).
"""

from repro.sim.kernel import Event, SimulationError, Simulator
from repro.sim.process import Interrupt, Process, Signal, Timeout, all_of
from repro.sim.rng import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    RngRegistry,
    Uniform,
)
from repro.sim.clock import LamportClock, Version, ZERO_VERSION
from repro.sim.tracing import NULL_TRACE, Trace, TraceRecord

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Interrupt",
    "Process",
    "Signal",
    "Timeout",
    "all_of",
    "Constant",
    "Distribution",
    "Empirical",
    "Exponential",
    "LogNormal",
    "Mixture",
    "Normal",
    "RngRegistry",
    "Uniform",
    "LamportClock",
    "Version",
    "ZERO_VERSION",
    "NULL_TRACE",
    "Trace",
    "TraceRecord",
]
