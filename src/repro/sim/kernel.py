"""Event-driven simulation kernel.

A :class:`Simulator` owns a virtual clock and a binary heap of scheduled
events.  Everything else in the reproduction — network message delivery,
group-communication timeouts, lazy-update timers, client request loops —
is expressed as events on one simulator instance, which makes whole
experiments deterministic and fast (no real sleeping, no threads).

The kernel is deliberately small: events are ``(time, priority, seq)``-ordered
callbacks.  Richer abstractions (generator processes, signals) live in
:mod:`repro.sim.process` and are built on top of this scheduler.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled before they fire.
    Ordering is by ``(time, priority, seq)``: ties in time are broken first
    by an explicit priority (lower fires earlier) and then by scheduling
    order, which keeps runs reproducible.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)

    The clock unit is seconds (floats).  ``run`` processes events in
    timestamp order until the heap empties, a time bound is reached, or
    :meth:`stop` is called from inside a callback.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (for tracing/tests)."""
        return self._processed

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (now={self._now}, requested={time})"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until ``until`` (or until idle).

        Returns the virtual time at which the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the
        last event fired earlier, so successive bounded runs compose.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self._processed += 1
                event.callback(*event.args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Process a single event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active callback returns."""
        self._stopped = True
