"""Event-driven simulation kernel.

A :class:`Simulator` owns a virtual clock and a binary heap of scheduled
events.  Everything else in the reproduction — network message delivery,
group-communication timeouts, lazy-update timers, client request loops —
is expressed as events on one simulator instance, which makes whole
experiments deterministic and fast (no real sleeping, no threads).

The kernel is deliberately small: events are ``(time, priority, seq)``-ordered
callbacks.  Richer abstractions (generator processes, signals) live in
:mod:`repro.sim.process` and are built on top of this scheduler.

Because every simulated experiment funnels through :meth:`Simulator.run`,
the kernel carries three throughput optimisations that are invisible to
callers:

* cancelled events are counted as *tombstones* and the heap is compacted
  once they dominate, so timer-heavy protocols (deadline timers that are
  almost always cancelled) never pay heap-log cost for dead entries and
  the heap cannot grow without bound between pops;
* the pop loop binds its hot attributes to locals and skips tombstones
  without re-entering the heap API;
* fired events whose objects are no longer referenced anywhere else are
  recycled through a small free list, cutting per-event allocation in
  event-dense runs.
"""

from __future__ import annotations

import heapq
import itertools
import math
import sys
from typing import Any, Callable, Optional

# Compaction triggers when tombstones exceed this count AND this fraction
# of the heap; the count floor keeps tiny heaps from compacting constantly.
_COMPACT_MIN_TOMBSTONES = 64
_COMPACT_RATIO = 0.5

# Upper bound on recycled Event objects kept per simulator.
_FREE_LIST_MAX = 1024


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled before they fire.
    Ordering is by ``(time, priority, seq)``: ties in time are broken first
    by an explicit priority (lower fires earlier) and then by scheduling
    order, which keeps runs reproducible.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)

    The clock unit is seconds (floats).  ``run`` processes events in
    timestamp order until the heap empties, a time bound is reached, or
    :meth:`stop` is called from inside a callback.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0
        self._tombstones = 0
        self._compactions = 0
        self._free: list[Event] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (for tracing/tests)."""
        return self._processed

    @property
    def tombstones(self) -> int:
        """Cancelled events still sitting in the heap (for tests/metrics)."""
        return self._tombstones

    @property
    def compactions(self) -> int:
        """Number of tombstone compaction passes run so far."""
        return self._compactions

    def heap_size(self) -> int:
        """Physical heap length, tombstones included (for tests/metrics)."""
        return len(self._heap)

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return len(self._heap) - self._tombstones

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (now={self._now}, requested={time})"
            )
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = next(self._seq)
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, priority, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, event)
        return event

    def schedule_batch(
        self,
        times,
        callback: Callable[..., Any],
        args_list: Optional[list[tuple]] = None,
        priority: int = 0,
    ) -> list[Event]:
        """Bulk-schedule one callback at many absolute times.

        The batched counterpart of :meth:`schedule_at` for callers that
        produce whole arrival vectors at once (the aggregated client
        tier).  Semantics match ``[schedule_at(t, callback, *args) for t
        in times]`` exactly — same validation, same ``(time, priority,
        seq)`` ordering with seq assigned in input order, same free-list
        reuse — but the heap is grown with one ``extend`` + ``heapify``
        (O(n + m)) instead of m pushes (O(m log n)) once the batch is
        large relative to the heap.

        ``args_list``, when given, supplies one args tuple per time;
        otherwise every event fires ``callback()``.
        """
        times = [float(t) for t in times]
        if args_list is not None and len(args_list) != len(times):
            raise SimulationError(
                f"args_list length {len(args_list)} != times length {len(times)}"
            )
        now = self._now
        for t in times:
            if math.isnan(t):
                raise SimulationError("cannot schedule at NaN time")
            if t < now:
                raise SimulationError(
                    f"cannot schedule in the past (now={now}, requested={t})"
                )
        free = self._free
        seq = self._seq
        events: list[Event] = []
        for i, t in enumerate(times):
            args = args_list[i] if args_list is not None else ()
            if free:
                event = free.pop()
                event.time = t
                event.priority = priority
                event.seq = next(seq)
                event.callback = callback
                event.args = args
                event.cancelled = False
            else:
                event = Event(t, priority, next(seq), callback, args, self)
            events.append(event)
        heap = self._heap
        if len(events) * 8 >= len(heap):
            heap.extend(events)
            heapq.heapify(heap)
        else:
            for event in events:
                heapq.heappush(heap, event)
        return events

    # ------------------------------------------------------------------
    # Tombstone accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when tombstones dominate."""
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones >= _COMPACT_RATIO * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify (O(n))."""
        live = [event for event in self._heap if not event.cancelled]
        free = self._free
        for event in self._heap:
            # Same aliasing guard as _recycle: 3 = loop local + list slot +
            # getrefcount argument; more means a client still holds it.
            if (
                event.cancelled
                and len(free) < _FREE_LIST_MAX
                and sys.getrefcount(event) <= 3
            ):
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                free.append(event)
        self._heap = live
        heapq.heapify(live)
        self._tombstones = 0
        self._compactions += 1

    def _recycle(self, event: Event) -> None:
        """Return a fired/cancelled event to the free list if nothing else
        can reach it.

        ``sys.getrefcount`` sees the caller's local, our argument binding,
        and the getrefcount argument itself; anything above that means a
        client kept a handle (e.g. to ``cancel()`` later) and the object
        must not be reused.
        """
        if len(self._free) < _FREE_LIST_MAX and sys.getrefcount(event) <= 3:
            event.callback = None  # type: ignore[assignment]
            event.args = ()
            self._free.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until ``until`` (or until idle).

        Returns the virtual time at which the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the
        last event fired earlier, so successive bounded runs compose.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                event = heap[0]
                if until is not None and event.time > until:
                    break
                heappop(heap)
                if event.cancelled:
                    self._tombstones -= 1
                    self._recycle(event)
                    continue
                self._now = event.time
                self._processed += 1
                event.callback(*event.args)
                self._recycle(event)
                heap = self._heap  # _compact may have swapped the list
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Process a single event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._tombstones -= 1
                self._recycle(event)
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            self._recycle(event)
            return True
        return False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active callback returns."""
        self._stopped = True
