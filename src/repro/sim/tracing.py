"""Structured event tracing.

Experiments and tests observe protocol behaviour through a :class:`Trace`:
components emit :class:`TraceRecord` entries (category, actor, detail dict)
and analyses filter them afterwards.  Tracing is optional everywhere — a
``Trace`` with ``enabled=False`` costs one attribute check per emission.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.time:.6f} {self.category} {self.actor} {self.detail}>"


class Trace:
    """An append-only log of :class:`TraceRecord` with simple queries."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, category: str, actor: str, **detail: Any) -> None:
        """Record one event (no-op when disabled).

        ``dropped`` counts records that were lost entirely: neither stored
        (capacity hit) nor delivered to any live subscriber.  A record that
        overflows capacity but reaches a subscriber was observed, not
        dropped.
        """
        if not self.enabled:
            return
        record = TraceRecord(time, category, actor, detail)
        stored = not (
            self.capacity is not None and len(self.records) >= self.capacity
        )
        if stored:
            self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        if not stored and not self._subscribers:
            self.dropped += 1

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record (live monitoring)."""
        self._subscribers.append(callback)

    def filter(
        self, category: Optional[str] = None, actor: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given category and/or actor."""
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if actor is not None and record.actor != actor:
                continue
            yield record

    def count(self, category: Optional[str] = None, actor: Optional[str] = None) -> int:
        return sum(1 for _ in self.filter(category, actor))

    def last(
        self, category: Optional[str] = None, actor: Optional[str] = None
    ) -> Optional[TraceRecord]:
        match = None
        for record in self.filter(category, actor):
            match = record
        return match

    def to_jsonl(self) -> str:
        """Render the stored records as JSON Lines for artifact dumps.

        One object per record with ``time``/``category``/``actor`` and, when
        present, ``detail``.  Non-JSON-able detail values (enums, dataclass
        instances) fall back to ``str``.
        """
        lines = []
        for record in self.records:
            payload: dict[str, Any] = {
                "time": record.time,
                "category": record.category,
                "actor": record.actor,
            }
            if record.detail:
                payload["detail"] = record.detail
            lines.append(json.dumps(payload, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


NULL_TRACE = Trace(enabled=False)
