"""Reproducible random streams and delay distributions.

Experiments need independent, seedable randomness per concern (service
times of replica 3, link jitter client-1→replica-7, update arrivals, ...).
:class:`RngRegistry` derives one :class:`random.Random` stream per name from
a master seed, so adding a new consumer never perturbs existing streams and
every run is exactly reproducible from ``(seed, names used)``.

:class:`Distribution` subclasses model the delay distributions used across
the testbed.  The paper's background load (§6) is a normally distributed
service delay; network substrates also use uniform/exponential/shifted
distributions.  All distributions clamp to a non-negative floor because they
model durations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence


class RngRegistry:
    """Derives independent named ``random.Random`` streams from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per repetition of a sweep)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))


def seed_for(root_seed: int, *key_parts: object) -> int:
    """Derive a deterministic 64-bit seed for one cell of a sweep.

    The same hash family as :meth:`RngRegistry.spawn`: independent of
    execution order and process boundaries, so a parallel experiment
    runner hands every cell the exact seed the serial loop would have
    derived.  ``key_parts`` are joined by their ``repr`` — use stable,
    primitive keys (strings, ints, floats).
    """
    key = ":".join(repr(part) for part in key_parts)
    digest = hashlib.sha256(f"{int(root_seed)}:cell:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class Distribution:
    """A non-negative duration distribution sampled with an explicit stream."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean where available (used by tests and capacity checks)."""
        raise NotImplementedError


class Constant(Distribution):
    """Always returns the same value."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative constant delay {value!r}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid uniform bounds [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Normal(Distribution):
    """Normal(mu, sigma) truncated below at ``floor`` (durations only).

    §6 of the paper simulates background load with a normally distributed
    delay of mean 100 ms; this is the distribution that models it.
    """

    def __init__(self, mu: float, sigma: float, floor: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError(f"negative sigma {sigma!r}")
        if floor < 0:
            raise ValueError(f"negative floor {floor!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.floor = float(floor)

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.mu, self.sigma))

    def mean(self) -> float:
        # Approximate: exact only when truncation mass is negligible.
        return max(self.floor, self.mu)

    def __repr__(self) -> str:
        return f"Normal({self.mu}, {self.sigma}, floor={self.floor})"


class Exponential(Distribution):
    """Exponential with the given mean, optionally shifted by ``offset``."""

    def __init__(self, mean: float, offset: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"non-positive mean {mean!r}")
        if offset < 0:
            raise ValueError(f"negative offset {offset!r}")
        self._mean = float(mean)
        self.offset = float(offset)

    def sample(self, rng: random.Random) -> float:
        return self.offset + rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self.offset + self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean}, offset={self.offset})"


class LogNormal(Distribution):
    """Log-normal parameterized by the underlying normal's mu/sigma."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"negative sigma {sigma!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        import math

        return math.exp(self.mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormal({self.mu}, {self.sigma})"


class Empirical(Distribution):
    """Samples uniformly from recorded values (for trace-driven runs)."""

    def __init__(self, values: Sequence[float]) -> None:
        vals = [float(v) for v in values]
        if not vals:
            raise ValueError("empirical distribution needs at least one value")
        if any(v < 0 for v in vals):
            raise ValueError("empirical durations must be non-negative")
        self.values = vals

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    Models bimodal behaviour such as a host that is usually fast but
    occasionally suffers a transient overload (§1 motivates exactly this).
    """

    def __init__(
        self,
        components: Sequence[Distribution],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        comps = list(components)
        if not comps:
            raise ValueError("mixture needs at least one component")
        if weights is None:
            weights = [1.0] * len(comps)
        weights = [float(w) for w in weights]
        if len(weights) != len(comps):
            raise ValueError("weights/components length mismatch")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        self.components = comps
        total = sum(weights)
        self.weights = [w / total for w in weights]

    def sample(self, rng: random.Random) -> float:
        pick = rng.random()
        acc = 0.0
        for comp, weight in zip(self.components, self.weights):
            acc += weight
            if pick <= acc:
                return comp.sample(rng)
        return self.components[-1].sample(rng)

    def mean(self) -> float:
        return sum(w * c.mean() for w, c in zip(self.weights, self.components))

    def __repr__(self) -> str:
        return f"Mixture({self.components!r}, weights={self.weights!r})"
