"""Logical clocks.

The paper measures staleness in *versions* using timestamps "based on
logical clocks" (Lamport [7]) so that no clock synchronization is needed
across replicas.  The GSN counter in the sequencer is one such logical
clock; this module provides the general mechanism plus a monotonic version
counter used by the replicated object state.
"""

from __future__ import annotations

from dataclasses import dataclass


class LamportClock:
    """A classic Lamport logical clock.

    ``tick()`` for local events, ``witness(remote)`` on message receipt.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"negative clock start {start!r}")
        self._time = int(start)

    @property
    def time(self) -> int:
        return self._time

    def tick(self) -> int:
        """Advance for a local event; returns the new timestamp."""
        self._time += 1
        return self._time

    def witness(self, remote_time: int) -> int:
        """Merge a received timestamp; returns the new local timestamp."""
        if remote_time < 0:
            raise ValueError(f"negative remote timestamp {remote_time!r}")
        self._time = max(self._time, remote_time) + 1
        return self._time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock({self._time})"


class VectorClock:
    """A vector clock over named processes.

    Used by the causal consistency handler: each entry counts the updates
    of one writer that a state reflects.  The class is a value-ish type —
    mutating operations return ``self`` for chaining, and :meth:`copy`
    gives an independent snapshot for stamping messages.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self._counts: dict[str, int] = {}
        if counts:
            for name, count in counts.items():
                if count < 0:
                    raise ValueError(f"negative count for {name!r}: {count!r}")
                if count > 0:
                    self._counts[name] = int(count)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def increment(self, name: str) -> "VectorClock":
        self._counts[name] = self._counts.get(name, 0) + 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum (adopt everything the other clock has seen)."""
        for name, count in other._counts.items():
            if count > self._counts.get(name, 0):
                self._counts[name] = count
        return self

    def dominates(self, other: "VectorClock") -> bool:
        """True iff every entry of ``other`` is <= the matching entry here."""
        return all(
            self._counts.get(name, 0) >= count
            for name, count in other._counts.items()
        )

    def copy(self) -> "VectorClock":
        return VectorClock(dict(self._counts))

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def total(self) -> int:
        """Sum of entries — the number of updates this clock has seen."""
        return sum(self._counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._counts.items()))
        return f"VectorClock({{{inner}}})"


@dataclass(frozen=True, order=True)
class Version:
    """A totally ordered version stamp ``(sequence, author)``.

    In the sequential-consistency protocol the sequence component is the
    GSN, so comparing versions compares commit order; the author breaks
    ties for diagnostics only (GSNs are unique by construction).
    """

    sequence: int
    author: str = ""

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError(f"negative version sequence {self.sequence!r}")

    def next(self, author: str = "") -> "Version":
        return Version(self.sequence + 1, author)


ZERO_VERSION = Version(0, "")
