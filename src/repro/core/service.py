"""Assembly of a whole replicated service (Figure 1).

:class:`ReplicatedService` wires up the two-level replica organization of
§3 on a simulated network: a primary replication group (sequencer +
serving primaries for the sequential handler; serving primaries only for
FIFO), a secondary replication group, and the QoS group spanning all
replicas and their clients.  It registers everything with the membership
service, installs the initial views synchronously, and hands out
:class:`~repro.core.client.ClientHandler` instances via
:meth:`create_client`.

:func:`build_testbed` creates the full stack (simulator, RNG registry,
network, membership, service) in one call — the entry point the examples
and the experiment harness both use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.client import ClientHandler, RetryPolicy
from repro.core.controller import ConsistencyController, ControllerConfig
from repro.core.detector import DetectorConfig
from repro.core.handlers.fifo import FifoReplicaHandler
from repro.core.handlers.sequential import SequentialReplicaHandler
from repro.core.overload import DegradationPolicy, OverloadConfig
from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.replica import ReplicaHandlerBase, ServiceGroups
from repro.core.selection import SelectionStrategy
from repro.core.staleness import StalenessModel
from repro.core.state import CounterObject, ReplicatedObject
from repro.core.tuning import StalenessTarget
from repro.groups.membership import MembershipConfig, MembershipService
from repro.net.latency import LanLatency, LatencyModel
from repro.obs.calibration import CalibrationTracker
from repro.obs.metrics import MetricsRegistry
from repro.net.network import Network
from repro.net.node import Host
from repro.sim.kernel import Simulator
from repro.sim.rng import Distribution, Normal, RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace


def default_service_time() -> Distribution:
    """§6's simulated background load: normally distributed service delay
    with a mean of 100 ms (spread parameter 50 ms; see DESIGN.md on the
    paper's ambiguous "variance of 50 milliseconds")."""
    return Normal(0.100, 0.050, floor=0.002)


@dataclass
class ServiceConfig:
    """Everything tunable about one replicated service."""

    name: str = "svc"
    num_primaries: int = 4  # serving primaries; the sequencer is extra
    num_secondaries: int = 6
    ordering: OrderingGuarantee = OrderingGuarantee.SEQUENTIAL
    lazy_update_interval: float = 2.0  # T_L / "LUI" in §6
    # Optional closed-loop T_L tuning (repro.core.tuning): when set, the
    # lazy publisher adapts the interval to hold this staleness target
    # and announces the live value through its staleness broadcasts.
    adaptive_lazy_target: Optional["StalenessTarget"] = None
    window_size: int = 20  # sliding window l (§5.2; §6 uses 20)
    quantum: float = 1e-3  # pmf grid (1 ms bins)
    read_service_time: Distribution = field(default_factory=default_service_time)
    update_service_time: Optional[Distribution] = None
    host_speed_factors: Optional[Sequence[float]] = None  # cycled over replicas
    publish_performance: bool = True
    charge_selection_overhead: bool = False
    heartbeat_interval: float = 0.25
    suspect_timeout: float = 1.0
    rto: float = 0.05
    gsn_wait_timeout: float = 0.25
    gc_timeout: float = 30.0
    # Overload protection (DESIGN.md §11).  None (the default) disables
    # shedding, bounded queues, and deferred-read expiry entirely — the
    # service behaves bit-identically to builds that predate the feature.
    overload: Optional[OverloadConfig] = None
    # φ-accrual gray-failure detection (DESIGN.md §14).  None (the
    # default) disables suspicion-driven ejection, hedging, probing, the
    # adaptive commit-gap watchdog, and slow-publisher reassignment —
    # again bit-identical to detector-free builds.
    detector: Optional[DetectorConfig] = None
    # Closed-loop SLA guardian (DESIGN.md §16).  None (the default)
    # means no controller exists and no actuation path is live — once
    # more bit-identical to controller-free builds.  The live instance
    # is built by attach_controller() when the sensors (SloEngine +
    # TimeseriesRecorder) exist.
    controller: Optional["ControllerConfig"] = None

    def __post_init__(self) -> None:
        if self.num_primaries < 1:
            raise ValueError("need at least one serving primary")
        if self.num_secondaries < 0:
            raise ValueError("negative secondary count")
        if self.lazy_update_interval <= 0:
            raise ValueError("lazy update interval must be positive")

    @property
    def has_sequencer(self) -> bool:
        return self.ordering is OrderingGuarantee.SEQUENTIAL


class ReplicatedService:
    """One replicated service: replicas, groups, and client factory."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        membership: MembershipService,
        rng: RngRegistry,
        config: Optional[ServiceConfig] = None,
        app_factory: Callable[[], ReplicatedObject] = CounterObject,
        trace: Trace = NULL_TRACE,
        metrics: Optional[MetricsRegistry] = None,
        calibration: Optional[CalibrationTracker] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.membership = membership
        self.rng = rng
        self.config = config or ServiceConfig()
        self.app_factory = app_factory
        self.trace = trace
        # One registry shared by every replica and client of the service;
        # snapshots therefore describe the whole deployment.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.calibration = calibration
        self.groups = ServiceGroups(self.config.name)
        self.clients: dict[str, ClientHandler] = {}
        self.controller: Optional[ConsistencyController] = None

        self._speed_cycle = list(self.config.host_speed_factors or [1.0])
        self._next_host = 0

        self.sequencer: Optional[ReplicaHandlerBase] = None
        self.primaries: list[ReplicaHandlerBase] = []
        self.secondaries: list[ReplicaHandlerBase] = []
        self._build_replicas()
        self._register_groups()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_host(self, name: str) -> Host:
        factor = self._speed_cycle[self._next_host % len(self._speed_cycle)]
        self._next_host += 1
        return Host(name, factor)

    def _make_replica(self, name: str) -> ReplicaHandlerBase:
        from repro.core.handlers import replica_handler_for

        cfg = self.config
        common = dict(
            groups=self.groups,
            app=self.app_factory(),
            rng=self.rng,
            read_service_time=cfg.read_service_time,
            update_service_time=cfg.update_service_time,
            lazy_update_interval=cfg.lazy_update_interval,
            trace=self.trace,
            publish_performance=cfg.publish_performance,
            heartbeat_interval=cfg.heartbeat_interval,
            rto=cfg.rto,
            metrics=self.metrics,
            overload=cfg.overload,
        )
        handler_cls = replica_handler_for(cfg.ordering)
        if handler_cls is SequentialReplicaHandler:
            common["gsn_wait_timeout"] = cfg.gsn_wait_timeout
            common["detector"] = cfg.detector
            if cfg.adaptive_lazy_target is not None:
                from repro.core.tuning import AdaptiveLazyController

                common["lazy_controller"] = AdaptiveLazyController(
                    cfg.adaptive_lazy_target
                )
        handler: ReplicaHandlerBase = handler_cls(name, **common)
        self.network.attach(handler, self._make_host(f"host-{name}"))
        return handler

    def _build_replicas(self) -> None:
        cfg = self.config
        if cfg.has_sequencer:
            self.sequencer = self._make_replica(f"{cfg.name}-seq")
        for i in range(1, cfg.num_primaries + 1):
            self.primaries.append(self._make_replica(f"{cfg.name}-p{i}"))
        for i in range(1, cfg.num_secondaries + 1):
            self.secondaries.append(self._make_replica(f"{cfg.name}-s{i}"))

    def _register_groups(self) -> None:
        # Rank order matters: the sequencer registers first so it leads the
        # primary group; p1 is next, making it the designated lazy
        # publisher for the sequential handler.
        primary_members: list[ReplicaHandlerBase] = []
        if self.sequencer is not None:
            primary_members.append(self.sequencer)
        primary_members.extend(self.primaries)

        for handler in primary_members:
            self.membership.register(self.groups.primary, handler.name)
            handler.assume_membership(self.groups.primary)
        for handler in self.secondaries:
            self.membership.register(self.groups.secondary, handler.name)
            handler.assume_membership(self.groups.secondary)
        for handler in self.all_replicas():
            self.membership.register(self.groups.qos, handler.name)
            handler.assume_membership(self.groups.qos)

        # Every replica needs all three views (roles, publisher targets,
        # client lists); watch the groups it is not a member of and install
        # the initial views synchronously.
        for handler in self.all_replicas():
            for group in (self.groups.primary, self.groups.secondary, self.groups.qos):
                if handler.name not in self.membership.view_of(group):
                    self.membership.watch(group, handler.name)
        self._push_views()

    def _push_views(self) -> None:
        for handler in self.all_replicas():
            for group in (self.groups.primary, self.groups.secondary, self.groups.qos):
                handler.adopt_view(self.membership.view_of(group))
        for client in self.clients.values():
            for group in (self.groups.primary, self.groups.secondary, self.groups.qos):
                client.adopt_view(self.membership.view_of(group))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_replicas(self) -> list[ReplicaHandlerBase]:
        replicas: list[ReplicaHandlerBase] = []
        if self.sequencer is not None:
            replicas.append(self.sequencer)
        replicas.extend(self.primaries)
        replicas.extend(self.secondaries)
        return replicas

    def replica_by_name(self, name: str) -> ReplicaHandlerBase:
        for handler in self.all_replicas():
            if handler.name == name:
                return handler
        raise KeyError(f"no replica named {name!r}")

    @property
    def sequencer_name(self) -> Optional[str]:
        return self.sequencer.name if self.sequencer is not None else None

    def serving_replica_count(self) -> int:
        return len(self.primaries) + len(self.secondaries)

    # ------------------------------------------------------------------
    # Dynamic membership (scale-out and recovery)
    # ------------------------------------------------------------------
    def add_secondary(self) -> ReplicaHandlerBase:
        """Grow the secondary group at runtime.

        §3: "The size of these groups can be tuned to implement a range of
        consistency semantics."  A fresh secondary joins with empty state
        and synchronizes at the next lazy update — exactly how the
        protocol keeps any secondary current, so no extra state-transfer
        machinery is needed.
        """
        self._secondary_counter = getattr(
            self, "_secondary_counter", len(self.secondaries)
        ) + 1
        handler = self._make_replica(f"{self.config.name}-s{self._secondary_counter}")
        self.secondaries.append(handler)
        self.membership.register(self.groups.secondary, handler.name)
        handler.assume_membership(self.groups.secondary)
        self.membership.register(self.groups.qos, handler.name)
        handler.assume_membership(self.groups.qos)
        self.membership.watch(self.groups.primary, handler.name)
        self._push_views()
        return handler

    def recover_secondary(self, name: str) -> ReplicaHandlerBase:
        """Bring a crashed-and-evicted secondary back into service.

        The fabric is told the endpoint is up again, the replica rejoins
        its groups (fresh channel epochs are opened automatically by the
        view change), and the next lazy update restores its state.
        """
        handler = self.replica_by_name(name)
        if handler not in self.secondaries:
            raise ValueError(f"{name!r} is not a secondary")
        self.network.recover(name)
        handler.flush_pending()
        self.membership.register(self.groups.secondary, name)
        self.membership.register(self.groups.qos, name)
        handler.assume_membership(self.groups.secondary)
        handler.assume_membership(self.groups.qos)
        self._push_views()
        return handler

    def recover_primary(self, name: str) -> ReplicaHandlerBase:
        """Bring a crashed-and-evicted primary (or ex-sequencer) back.

        The replica rejoins the primary and QoS groups at the *tail* of the
        view (rank order is join order, so it never usurps the current
        sequencer or lazy publisher), then runs the state-transfer protocol
        (DESIGN.md §9): it requests a snapshot via the current sequencer, a
        donor primary ships committed state + CSN/GSN + the uncommitted log
        suffix, and the replica replays it to re-enter at full strength.
        """
        handler = self.replica_by_name(name)
        if handler not in self.primaries and handler is not self.sequencer:
            raise ValueError(f"{name!r} is not a primary")
        if not hasattr(handler, "begin_state_transfer"):
            raise ValueError(
                f"primary recovery needs a state-transfer capable handler; "
                f"{type(handler).__name__} does not implement one"
            )
        self.network.recover(name)
        self.membership.register(self.groups.primary, name)
        self.membership.register(self.groups.qos, name)
        handler.assume_membership(self.groups.primary)
        handler.assume_membership(self.groups.qos)
        self._push_views()
        handler.begin_state_transfer()
        return handler

    def recover_replica(self, name: str) -> ReplicaHandlerBase:
        """Recover any crashed replica, dispatching on its role."""
        handler = self.replica_by_name(name)
        if handler in self.secondaries:
            return self.recover_secondary(name)
        return self.recover_primary(name)

    # ------------------------------------------------------------------
    # Closed-loop control (DESIGN.md §16)
    # ------------------------------------------------------------------
    def attach_controller(self, engine, recorder) -> ConsistencyController:
        """Build the ConsistencyController declared by ``config.controller``.

        Separate from construction because the controller's sensors — an
        :class:`~repro.obs.slo.SloEngine` and the *live*
        :class:`~repro.obs.timeseries.TimeseriesRecorder` — are owned by
        the scenario/experiment, not the service.  The controller adopts
        every primary (sequencer included) as its T_L actuator and hooks
        their failover re-arm path; consistency classes and ladders are
        registered afterwards by the caller, which then calls
        ``start()``.
        """
        if self.config.controller is None:
            raise ValueError(
                "ServiceConfig.controller is not set; nothing to attach"
            )
        if self.controller is not None:
            raise ValueError("a controller is already attached")
        controller = ConsistencyController(
            self.sim,
            engine,
            recorder,
            self.config.controller,
            trace=self.trace,
            metrics=self.metrics,
            name=f"{self.config.name}-controller",
        )
        controller.register_service(self)
        self.controller = controller
        return controller

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def create_client(
        self,
        name: str,
        read_only_methods: Optional[set[str]] = None,
        default_qos: Optional[QoSSpec] = None,
        strategy: Optional[SelectionStrategy] = None,
        staleness_model: Optional["StalenessModel"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        on_qos_violation: Optional[Callable[[float], None]] = None,
        host: Optional[Host] = None,
        degradation: Optional[DegradationPolicy] = None,
        priority: Optional[str] = None,
    ) -> ClientHandler:
        """Create and wire a client gateway handler for this service."""
        from repro.core.handlers import client_handler_for

        if name in self.clients:
            raise ValueError(f"client {name!r} already exists")
        cfg = self.config
        handler_cls = client_handler_for(cfg.ordering)
        handler = handler_cls(
            name,
            groups=self.groups,
            lazy_update_interval=cfg.lazy_update_interval,
            read_only_methods=read_only_methods,
            strategy=strategy,
            staleness_model=staleness_model,
            window_size=cfg.window_size,
            quantum=cfg.quantum,
            default_qos=default_qos,
            has_sequencer=cfg.has_sequencer,
            charge_selection_overhead=cfg.charge_selection_overhead,
            retry_policy=retry_policy,
            gc_timeout=cfg.gc_timeout,
            on_qos_violation=on_qos_violation,
            degradation=degradation,
            priority=priority,
            detector=cfg.detector,
            trace=self.trace,
            heartbeat_interval=cfg.heartbeat_interval,
            rto=cfg.rto,
            metrics=self.metrics,
            calibration=self.calibration,
        )
        self.network.attach(handler, host or self._make_host(f"host-{name}"))
        self.membership.register(self.groups.qos, name)
        handler.assume_membership(self.groups.qos)
        self.membership.watch(self.groups.primary, name)
        self.membership.watch(self.groups.secondary, name)
        self.clients[name] = handler
        self._push_views()
        return handler


@dataclass
class Testbed:
    """A complete simulated deployment: one call away from experiments."""

    sim: Simulator
    rng: RngRegistry
    network: Network
    membership: MembershipService
    service: ReplicatedService
    trace: Trace
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    calibration: Optional[CalibrationTracker] = None


def build_testbed(
    config: Optional[ServiceConfig] = None,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    app_factory: Callable[[], ReplicatedObject] = CounterObject,
    trace: Optional[Trace] = None,
    membership_config: Optional[MembershipConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    calibration: Optional[CalibrationTracker] = None,
) -> Testbed:
    """Build simulator + network + membership + one replicated service."""
    config = config or ServiceConfig()
    trace = trace if trace is not None else NULL_TRACE
    metrics = metrics if metrics is not None else MetricsRegistry()
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng, latency or LanLatency(), trace=trace, metrics=metrics)
    membership = MembershipService(
        config=membership_config
        or MembershipConfig(
            heartbeat_interval=config.heartbeat_interval,
            suspect_timeout=config.suspect_timeout,
            sweep_interval=config.heartbeat_interval,
        ),
        trace=trace,
    )
    network.attach(membership)
    service = ReplicatedService(
        sim, network, membership, rng, config, app_factory, trace,
        metrics=metrics, calibration=calibration,
    )
    return Testbed(
        sim, rng, network, membership, service, trace,
        metrics=metrics, calibration=calibration,
    )
