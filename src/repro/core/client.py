"""The client-side gateway handler (§5.3, §5.4).

Responsibilities, mirroring the paper's client gateway:

* **interception** — the client application calls :meth:`invoke`; the
  handler classifies it via the read-only registry (§2), records the
  interception time ``t_0``, and handles the rest transparently;
* **update path** — updates are multicast to every member of the primary
  group; the server side commits them in GSN order (§4.1.1); the first
  acknowledgement completes the call;
* **read path** — the handler evaluates the probabilistic models over its
  information repository, runs the selection strategy (Algorithm 1 by
  default), extends the set with the sequencer, and multicasts the read to
  the selected replicas;
* **first-reply delivery** — only the first response for a request is
  delivered to the client; later replies still update the repository
  (gateway delay, ``ert``);
* **online monitoring** — replies carry the piggybacked
  ``t_1 = t_s + t_q + t_b``; the handler derives the two-way gateway delay
  ``t_g = t_p − t_m − t_1`` and folds the replicas' performance broadcasts
  into the sliding windows;
* **timing-failure detection** — a response later than ``d`` (or missing)
  is a timing failure; if the observed frequency of timely responses drops
  below the client's ``P_c(d)``, the handler notifies the client through a
  callback.

Selection overhead is measured with a wall-clock timer around the
prediction + selection computation (this is the quantity Figure 3 reports)
and can optionally be *charged* to the request as virtual latency.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.prediction import ResponseTimePredictor
from repro.core.qos import QoSSpec
from repro.core.replica import ServiceGroups
from repro.core.repository import ClientInfoRepository
from repro.core.requests import (
    PerfBroadcast,
    ReadOnlyRegistry,
    ReadOutcome,
    Reply,
    Request,
    RequestKind,
    UpdateOutcome,
    next_request_id,
)
from repro.core.selection import ReplicaView, SelectionStrategy, StateBasedSelection
from repro.core.staleness import StalenessModel
from repro.groups.group import GroupEndpoint
from repro.net.message import Message
from repro.sim.kernel import Event
from repro.sim.process import Signal
from repro.sim.tracing import NULL_TRACE, Trace

OutcomeCallback = Callable[[Any], None]


@dataclass
class _PendingCall:
    request: Request
    t0: float
    tm: float  # transmission time (t0 + charged selection overhead)
    qos: Optional[QoSSpec]
    callback: Optional[OutcomeCallback]
    selected: tuple[str, ...]
    deadline_event: Optional[Event] = None
    gc_event: Optional[Event] = None
    failed: bool = False
    completed: bool = False


class ClientHandler(GroupEndpoint):
    """One client's gateway handler for one replicated service."""

    def __init__(
        self,
        name: str,
        groups: ServiceGroups,
        lazy_update_interval: float,
        read_only_methods: Optional[set[str]] = None,
        strategy: Optional[SelectionStrategy] = None,
        staleness_model: Optional["StalenessModel"] = None,
        window_size: int = 20,
        quantum: float = 1e-3,
        default_qos: Optional[QoSSpec] = None,
        has_sequencer: bool = True,
        use_prediction_cache: bool = True,
        charge_selection_overhead: bool = False,
        gc_timeout: float = 30.0,
        on_qos_violation: Optional[Callable[[float], None]] = None,
        trace: Trace = NULL_TRACE,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
    ) -> None:
        super().__init__(name, heartbeat_interval=heartbeat_interval, rto=rto)
        self.groups = groups
        self.registry = ReadOnlyRegistry(read_only_methods)
        # The repository's windows share the predictor's quantum so their
        # incremental histograms feed pmf construction directly.
        self.repository = ClientInfoRepository(window_size, quantum=quantum)
        self.predictor = ResponseTimePredictor(
            self.repository,
            lazy_update_interval,
            quantum=quantum,
            staleness_model=staleness_model,
            use_cache=use_prediction_cache,
        )
        self.strategy = strategy or StateBasedSelection()
        self.default_qos = default_qos
        self.has_sequencer = has_sequencer
        self.charge_selection_overhead = charge_selection_overhead
        self.gc_timeout = gc_timeout
        self.on_qos_violation = on_qos_violation
        self.trace = trace

        self._pending: dict[int, _PendingCall] = {}
        # Transmission times of recent requests, kept so late replies (the
        # non-first responses of a multicast read) still yield a gateway-
        # delay sample and an ert refresh.
        self._recent_tm: "OrderedDict[int, float]" = OrderedDict()

        # Metrics the experiments consume.
        self.reads_issued = 0
        self.reads_resolved = 0
        # Reads whose timing outcome is known: resolved reads plus pending
        # reads whose deadline has already passed.  The failure frequency
        # is judged against this so it is well-defined mid-flight.
        self.reads_judged = 0
        self.updates_issued = 0
        self.updates_resolved = 0
        self.timing_failures = 0
        self.deferred_replies = 0
        self.selected_counts: list[int] = []
        self.response_times: list[float] = []
        self.selection_overheads: list[float] = []  # wall-clock seconds (Fig. 3)
        self.staleness_violations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def declare_read_only(self, method: str) -> None:
        """§2: the client names its read-only methods explicitly."""
        self.registry.declare(method)

    def invoke(
        self,
        method: str,
        args: tuple = (),
        qos: Optional[QoSSpec] = None,
        callback: Optional[OutcomeCallback] = None,
    ) -> int:
        """Invoke a method on the replicated service; returns the request id.

        Reads require a QoS specification (per-call or ``default_qos``);
        updates ignore timeliness (§2: "the timeliness attribute is
        applicable only for read-only requests").
        """
        kind = self.registry.kind_of(method)
        if kind is RequestKind.READ:
            spec = qos or self.default_qos
            if spec is None:
                raise ValueError(f"read {method!r} needs a QoS specification")
            return self._issue_read(method, args, spec, callback)
        return self._issue_update(method, args, callback)

    def call(self, method: str, args: tuple = (), qos: Optional[QoSSpec] = None) -> Signal:
        """Process-friendly variant: returns a Signal fired with the outcome.

        Usage inside a workload generator::

            outcome = yield client.call("get", (), qos)
        """
        done = Signal(f"{self.name}.call")
        self.invoke(method, args, qos, callback=done.fire)
        return done

    @property
    def timely_fraction(self) -> float:
        """Observed frequency of timely responses so far (1.0 before data)."""
        if self.reads_judged == 0:
            return 1.0
        return 1.0 - self.timing_failures / self.reads_judged

    @property
    def observed_failure_probability(self) -> float:
        if self.reads_judged == 0:
            return 0.0
        return self.timing_failures / self.reads_judged

    def average_selected(self) -> float:
        if not self.selected_counts:
            return 0.0
        return sum(self.selected_counts) / len(self.selected_counts)

    def prediction_cache_stats(self) -> dict[str, int]:
        """Pmf-cache hit/miss/invalidation counters (benchmark reporting)."""
        return self.predictor.cache_stats

    # ------------------------------------------------------------------
    # Update path (§5: multicast to all primaries)
    # ------------------------------------------------------------------
    def _issue_update(
        self, method: str, args: tuple, callback: Optional[OutcomeCallback]
    ) -> int:
        request = Request(
            request_id=next_request_id(),
            client=self.name,
            method=method,
            args=args,
            kind=RequestKind.UPDATE,
            qos=None,
            sent_at=self.now,
            context=self._update_context(),
        )
        targets = list(self.view_of(self.groups.primary).members)
        pending = _PendingCall(
            request=request,
            t0=self.now,
            tm=self.now,
            qos=None,
            callback=callback,
            selected=tuple(targets),
        )
        self._pending[request.request_id] = pending
        self._remember_tm(request.request_id, pending.tm)
        pending.gc_event = self.sim.schedule(
            self.gc_timeout, self._garbage_collect, request.request_id
        )
        for target in targets:
            self.gsend(self.groups.qos, target, request)
        self.updates_issued += 1
        self.trace.emit(
            self.now, "client.update", self.name,
            request_id=request.request_id, targets=targets,
        )
        return request.request_id

    # ------------------------------------------------------------------
    # Read path (§5.3)
    # ------------------------------------------------------------------
    def _issue_read(
        self,
        method: str,
        args: tuple,
        qos: QoSSpec,
        callback: Optional[OutcomeCallback],
    ) -> int:
        t0 = self.now
        started = time.perf_counter()
        selection = self._select_replicas(qos)
        overhead = time.perf_counter() - started
        self.selection_overheads.append(overhead)

        request = Request(
            request_id=next_request_id(),
            client=self.name,
            method=method,
            args=args,
            kind=RequestKind.READ,
            qos=qos,
            sent_at=t0,
            context=self._read_context(),
        )
        tm = t0 + (overhead if self.charge_selection_overhead else 0.0)
        pending = _PendingCall(
            request=request,
            t0=t0,
            tm=tm,
            qos=qos,
            callback=callback,
            selected=selection,
        )
        self._pending[request.request_id] = pending
        self._remember_tm(request.request_id, tm)
        self.reads_issued += 1
        self.selected_counts.append(len(selection))

        targets = list(selection)
        if self.has_sequencer:
            sequencer = self.view_of(self.groups.primary).leader
            if sequencer is not None and sequencer not in targets:
                targets.append(sequencer)  # line 13/16: K extended with it

        def transmit() -> None:
            for target in targets:
                self.gsend(self.groups.qos, target, request)

        if tm > t0:
            self.sim.schedule(tm - t0, transmit)
        else:
            transmit()

        # The timing-failure detector arms a timer at the deadline.
        pending.deadline_event = self.sim.schedule(
            qos.deadline, self._on_deadline, request.request_id
        )
        pending.gc_event = self.sim.schedule(
            max(self.gc_timeout, 2 * qos.deadline),
            self._garbage_collect,
            request.request_id,
        )
        self.trace.emit(
            self.now, "client.read", self.name,
            request_id=request.request_id, selected=list(selection),
        )
        return request.request_id

    def _remember_tm(self, request_id: int, tm: float) -> None:
        self._recent_tm[request_id] = tm
        while len(self._recent_tm) > 4096:
            self._recent_tm.popitem(last=False)

    def _select_replicas(self, qos: QoSSpec) -> tuple[str, ...]:
        candidates = self._candidates(qos)
        stale_factor = self.predictor.staleness_factor(
            qos.staleness_threshold, self.now
        )
        result = self.strategy.select(candidates, qos, stale_factor)
        return result.replicas

    def _candidates(self, qos: QoSSpec) -> list[ReplicaView]:
        """Build the ``V`` tuples of Algorithm 1 from the repository."""
        primary_view = self.view_of(self.groups.primary)
        secondary_view = self.view_of(self.groups.secondary)
        sequencer = primary_view.leader if self.has_sequencer else None
        views: list[ReplicaView] = []
        for member in primary_view.members:
            if member == sequencer:
                continue  # the sequencer never services requests (§4.1)
            cdf = self.predictor.immediate_cdf(member, qos.deadline)
            views.append(
                ReplicaView(
                    name=member,
                    is_primary=True,
                    immediate_cdf=cdf,
                    delayed_cdf=cdf,  # unused for primaries (§5.3)
                    ert=self.repository.ert(member, self.now),
                )
            )
        for member in secondary_view.members:
            immediate, delayed = self.predictor.response_cdfs(member, qos.deadline)
            views.append(
                ReplicaView(
                    name=member,
                    is_primary=False,
                    immediate_cdf=immediate,
                    delayed_cdf=delayed,
                    ert=self.repository.ert(member, self.now),
                )
            )
        return views

    # ------------------------------------------------------------------
    # Inbound traffic
    # ------------------------------------------------------------------
    def on_group_message(self, group: str, sender: str, payload: Any) -> None:
        if isinstance(payload, Reply):
            self._on_reply(payload)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PerfBroadcast):
            self.repository.record_broadcast(payload)
            self.repository.record_staleness(payload, self.now)

    # ------------------------------------------------------------------
    # Protocol-specific context hooks (overridden by the causal handler)
    # ------------------------------------------------------------------
    def _update_context(self) -> Any:
        """Piggyback attached to outgoing updates (None by default)."""
        return None

    def _read_context(self) -> Any:
        """Piggyback attached to outgoing reads (None by default)."""
        return None

    def _absorb_context(self, reply: Reply) -> None:
        """Fold a reply's protocol context into client state (no-op)."""

    def _on_reply(self, reply: Reply) -> None:
        tp = self.now
        is_read = reply.kind is RequestKind.READ
        self._absorb_context(reply)
        pending = self._pending.get(reply.request_id)
        # Even late/duplicate replies refresh the monitoring state (§5.4).
        if pending is not None:
            tm = pending.tm
        else:
            tm = self._recent_tm.get(reply.request_id)
        if tm is not None:
            tg = tp - tm - reply.t1
            self.repository.record_reply(reply.replica, tg, tp, read=is_read)
        if pending is None:
            return
        if pending.completed:
            return
        pending.completed = True
        if pending.deadline_event is not None:
            pending.deadline_event.cancel()
        if pending.gc_event is not None:
            pending.gc_event.cancel()
        del self._pending[reply.request_id]

        response_time = tp - pending.t0
        if pending.request.kind is RequestKind.READ:
            assert pending.qos is not None
            timing_failure = pending.failed or response_time > pending.qos.deadline
            self.reads_resolved += 1
            if not pending.failed:
                self.reads_judged += 1
                if timing_failure:
                    self.timing_failures += 1
            if reply.deferred:
                self.deferred_replies += 1
            self.response_times.append(response_time)
            outcome = ReadOutcome(
                request_id=reply.request_id,
                value=reply.value,
                response_time=response_time,
                timing_failure=timing_failure,
                replicas_selected=len(pending.selected),
                first_replica=reply.replica,
                deferred=reply.deferred,
                gsn=reply.gsn,
            )
            self._check_violation(pending.qos)
        else:
            self.updates_resolved += 1
            outcome = UpdateOutcome(
                request_id=reply.request_id,
                value=reply.value,
                response_time=response_time,
                first_replica=reply.replica,
                gsn=reply.gsn,
            )
        self.trace.emit(
            self.now, "client.reply", self.name,
            request_id=reply.request_id, replica=reply.replica,
            response_time=response_time,
        )
        if pending.callback is not None:
            pending.callback(outcome)

    # ------------------------------------------------------------------
    # Timing-failure detection (§5.4)
    # ------------------------------------------------------------------
    def _on_deadline(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.completed or pending.failed:
            return
        # No reply by the deadline: a timing failure, counted once even if
        # a (late) reply arrives afterwards.
        pending.failed = True
        self.timing_failures += 1
        self.reads_judged += 1
        self.trace.emit(
            self.now, "client.timing-failure", self.name, request_id=request_id
        )
        if pending.qos is not None:
            self._check_violation(pending.qos)

    def _check_violation(self, qos: Optional[QoSSpec]) -> None:
        if qos is None or self.on_qos_violation is None:
            return
        if self.reads_resolved > 0 and self.timely_fraction < qos.min_probability:
            self.on_qos_violation(self.observed_failure_probability)

    def _garbage_collect(self, request_id: int) -> None:
        """Abandon a request that will never complete (e.g. all selected
        replicas crashed before replying)."""
        pending = self._pending.pop(request_id, None)
        if pending is None or pending.completed:
            return
        pending.completed = True
        if pending.request.kind is RequestKind.READ:
            self.reads_resolved += 1
            if not pending.failed:
                self.timing_failures += 1
                self.reads_judged += 1
            outcome: Any = ReadOutcome(
                request_id=request_id,
                value=None,
                response_time=None,
                timing_failure=True,
                replicas_selected=len(pending.selected),
                first_replica=None,
                deferred=False,
                gsn=-1,
            )
        else:
            outcome = None
        self.trace.emit(self.now, "client.gc", self.name, request_id=request_id)
        if pending.callback is not None and outcome is not None:
            pending.callback(outcome)
