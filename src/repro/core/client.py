"""The client-side gateway handler (§5.3, §5.4).

Responsibilities, mirroring the paper's client gateway:

* **interception** — the client application calls :meth:`invoke`; the
  handler classifies it via the read-only registry (§2), records the
  interception time ``t_0``, and handles the rest transparently;
* **update path** — updates are multicast to every member of the primary
  group; the server side commits them in GSN order (§4.1.1); the first
  acknowledgement completes the call;
* **read path** — the handler evaluates the probabilistic models over its
  information repository, runs the selection strategy (Algorithm 1 by
  default), extends the set with the sequencer, and multicasts the read to
  the selected replicas;
* **first-reply delivery** — only the first response for a request is
  delivered to the client; later replies still update the repository
  (gateway delay, ``ert``);
* **online monitoring** — replies carry the piggybacked
  ``t_1 = t_s + t_q + t_b``; the handler derives the two-way gateway delay
  ``t_g = t_p − t_m − t_1`` and folds the replicas' performance broadcasts
  into the sliding windows;
* **timing-failure detection** — a response later than ``d`` (or missing)
  is a timing failure; if the observed frequency of timely responses drops
  below the client's ``P_c(d)``, the handler notifies the client through a
  callback.

Selection overhead is measured with a wall-clock timer around the
prediction + selection computation (this is the quantity Figure 3 reports)
and can optionally be *charged* to the request as virtual latency.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.controller import QosAdjustment
from repro.core.detector import DetectorConfig, PhiAccrualDetector
from repro.core.overload import DegradationPolicy
from repro.core.prediction import ResponseTimePredictor
from repro.core.qos import QoSSpec
from repro.obs.calibration import CalibrationTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import emit_span, span_root
from repro.core.replica import ServiceGroups
from repro.core.repository import ClientInfoRepository
from repro.core.requests import (
    OverloadReply,
    PerfBroadcast,
    ReadOnlyRegistry,
    ReadOutcome,
    Reply,
    Request,
    RequestKind,
    UpdateOutcome,
    next_request_id,
)
from repro.core.selection import (
    ReplicaView,
    SelectionStrategy,
    StateBasedSelection,
    set_success_probability,
)
from repro.core.staleness import StalenessModel
from repro.groups.group import GroupEndpoint
from repro.groups.membership import View
from repro.net.message import Message
from repro.sim.kernel import Event
from repro.sim.process import Signal
from repro.sim.tracing import NULL_TRACE, Trace

OutcomeCallback = Callable[[Any], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-budget-aware re-dispatch of reads (DESIGN.md §9).

    When the selected replicas go quiet — crash, eviction, overload — the
    gateway re-issues the read to the next-best replica from the §5
    selection model instead of riding the timing failure out:

    * ``max_retries`` bounds re-dispatches per read (hedges not counted);
    * a retry is only attempted while the remaining deadline budget is at
      least ``min_remaining_budget`` seconds — a retry that cannot finish
      in time is wasted load;
    * ``checkpoint_fraction`` places the no-reply checkpoint: if nothing
      arrived by ``t0 + checkpoint_fraction * d``, the read is re-sent
      (subsequent checkpoints recurse on the remaining budget);
    * an eviction of every live selected replica (observed via a QoS-group
      view change) triggers an immediate re-dispatch;
    * ``hedge`` duplicates demanding reads — ``P_c(d)`` at least
      ``hedge_min_probability`` — to the runner-up replica at issue time
      when the strategy selected a single one.

    Retries never double-count in the timing statistics: each read is
    judged once, and the per-counter breakdown (``retries_sent``,
    ``retry_resolved``, ``reads_salvaged``...) is reported separately so
    ``observed_failure_probability`` stays honest.
    """

    max_retries: int = 1
    min_remaining_budget: float = 0.020
    checkpoint_fraction: float = 0.6
    hedge: bool = False
    hedge_min_probability: float = 0.9

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"negative max_retries {self.max_retries!r}")
        if self.min_remaining_budget < 0:
            raise ValueError("min_remaining_budget must be >= 0")
        if not 0.0 < self.checkpoint_fraction < 1.0:
            raise ValueError(
                f"checkpoint_fraction {self.checkpoint_fraction!r} outside (0, 1)"
            )
        if not 0.0 <= self.hedge_min_probability <= 1.0:
            raise ValueError("hedge_min_probability outside [0, 1]")


@dataclass
class _PendingCall:
    request: Request
    t0: float
    tm: float  # transmission time (t0 + charged selection overhead)
    qos: Optional[QoSSpec]
    callback: Optional[OutcomeCallback]
    selected: tuple[str, ...]
    deadline_event: Optional[Event] = None
    gc_event: Optional[Event] = None
    retry_event: Optional[Event] = None
    failed: bool = False
    completed: bool = False
    # Retry bookkeeping (reads only): replicas still expected to answer,
    # replicas already tried, and which targets were retries/hedges.
    live: set[str] = field(default_factory=set)
    tried: set[str] = field(default_factory=set)
    retry_targets: set[str] = field(default_factory=set)
    hedge_targets: set[str] = field(default_factory=set)
    retries: int = 0
    # Telemetry: the full-set success forecast scored by the calibration
    # tracker, and a monotone counter naming dispatch spans across retries.
    predicted: Optional[float] = None
    dispatches: int = 0


class ClientHandler(GroupEndpoint):
    """One client's gateway handler for one replicated service."""

    def __init__(
        self,
        name: str,
        groups: ServiceGroups,
        lazy_update_interval: float,
        read_only_methods: Optional[set[str]] = None,
        strategy: Optional[SelectionStrategy] = None,
        staleness_model: Optional["StalenessModel"] = None,
        window_size: int = 20,
        quantum: float = 1e-3,
        default_qos: Optional[QoSSpec] = None,
        has_sequencer: bool = True,
        use_prediction_cache: bool = True,
        charge_selection_overhead: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        gc_timeout: float = 30.0,
        on_qos_violation: Optional[Callable[[float], None]] = None,
        trace: Trace = NULL_TRACE,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        calibration: Optional[CalibrationTracker] = None,
        degradation: Optional[DegradationPolicy] = None,
        priority: Optional[str] = None,
        detector: Optional[DetectorConfig] = None,
    ) -> None:
        super().__init__(name, heartbeat_interval=heartbeat_interval, rto=rto)
        self.groups = groups
        self.registry = ReadOnlyRegistry(read_only_methods)
        # The counters below are load-bearing (timely_fraction drives the
        # QoS-violation callback), so a missing registry means a private
        # enabled one, never the no-op NULL_METRICS.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.calibration = calibration
        # The repository's windows share the predictor's quantum so their
        # incremental histograms feed pmf construction directly.
        self.repository = ClientInfoRepository(window_size, quantum=quantum)
        self.predictor = ResponseTimePredictor(
            self.repository,
            lazy_update_interval,
            quantum=quantum,
            staleness_model=staleness_model,
            use_cache=use_prediction_cache,
            metrics=self.metrics,
            metrics_labels={"client": name},
        )
        self.strategy = strategy or StateBasedSelection()
        self.default_qos = default_qos
        self.has_sequencer = has_sequencer
        self.charge_selection_overhead = charge_selection_overhead
        self.retry_policy = retry_policy
        self.gc_timeout = gc_timeout
        self.on_qos_violation = on_qos_violation
        self.trace = trace
        self.degradation = degradation
        self.priority = priority
        # Closed-loop per-class knob (DESIGN.md §16): set by the
        # ConsistencyController each control epoch; None (the default)
        # leaves every read's QoS exactly as declared — bit-identical to
        # controller-free builds.
        self.qos_actuation: Optional[QosAdjustment] = None
        # Default-off φ-accrual detection of gray (alive-but-slow)
        # replicas: None keeps the pre-detector behaviour bit-identical.
        self.detector: Optional[PhiAccrualDetector] = (
            None
            if detector is None
            else PhiAccrualDetector(
                detector, owner=name, metrics=self.metrics, trace=trace
            )
        )
        # Replica-name -> earliest time a new dispatch there is allowed
        # again (populated by OverloadReply.retry_after back-pressure).
        self._shed_until: dict[str, float] = {}

        self._pending: dict[int, _PendingCall] = {}
        # Transmission times of recent requests, kept so late replies (the
        # non-first responses of a multicast read) still yield a gateway-
        # delay sample and an ert refresh.
        self._recent_tm: "OrderedDict[int, float]" = OrderedDict()

        # Metrics the experiments consume, registry-backed; the historical
        # attribute names survive as read-only properties below.
        labels = {"client": name}
        counter = self.metrics.counter
        self._m_reads_issued = counter("client_reads_issued", **labels)
        self._m_reads_resolved = counter("client_reads_resolved", **labels)
        # Reads whose timing outcome is known: resolved reads plus pending
        # reads whose deadline has already passed.  The failure frequency
        # is judged against this so it is well-defined mid-flight.
        self._m_reads_judged = counter("client_reads_judged", **labels)
        self._m_updates_issued = counter("client_updates_issued", **labels)
        self._m_updates_resolved = counter("client_updates_resolved", **labels)
        self._m_timing_failures = counter("client_timing_failures", **labels)
        self._m_deferred_replies = counter("client_deferred_replies", **labels)
        self._m_replicas_selected = counter("client_replicas_selected", **labels)
        self._h_response_time = self.metrics.histogram(
            "client_response_time_seconds", **labels
        )
        self._h_selection_overhead = self.metrics.histogram(
            "client_selection_overhead_seconds", **labels
        )
        self.selected_counts: list[int] = []
        self.response_times: list[float] = []
        self.selection_overheads: list[float] = []  # wall-clock seconds (Fig. 3)
        self.staleness_violations = 0

        # Retry/hedge accounting, kept separate from the timing statistics
        # so ``observed_failure_probability`` stays honest (§5.4).
        self._m_retries_sent = counter("client_retries_sent", **labels)
        self._m_hedges_sent = counter("client_hedges_sent", **labels)
        self._m_failover_redispatches = counter(
            "client_failover_redispatches", **labels
        )
        # resolved counters: the first delivered reply came from a retry /
        # the hedge; salvaged: judged failed at the deadline, value later.
        self._m_retry_resolved = counter("client_retry_resolved", **labels)
        self._m_hedge_resolved = counter("client_hedge_resolved", **labels)
        self._m_reads_salvaged = counter("client_reads_salvaged", **labels)

        # Gray-failure detection accounting (DESIGN.md §14).
        self._m_detector_ejections = counter(
            "client_detector_ejections", **labels
        )
        self._m_detector_hedges = counter("client_detector_hedges", **labels)
        self._m_detector_probes = counter("client_detector_probes", **labels)

        # Overload / degradation-ladder accounting (DESIGN.md §11).
        self._m_overload_replies = counter("client_overload_replies", **labels)
        self._m_reads_shed = counter("client_reads_shed", **labels)
        self._m_steps_down = counter("client_degradation_steps_down", **labels)
        self._m_steps_up = counter("client_degradation_steps_up", **labels)
        self._g_degradation_level = self.metrics.gauge(
            "client_degradation_level", **labels
        )

    # ------------------------------------------------------------------
    # Registry-backed counters, exposed under their historical names.
    # ------------------------------------------------------------------
    @property
    def reads_issued(self) -> int:
        return self._m_reads_issued.value

    @property
    def reads_resolved(self) -> int:
        return self._m_reads_resolved.value

    @property
    def reads_judged(self) -> int:
        return self._m_reads_judged.value

    @property
    def updates_issued(self) -> int:
        return self._m_updates_issued.value

    @property
    def updates_resolved(self) -> int:
        return self._m_updates_resolved.value

    @property
    def timing_failures(self) -> int:
        return self._m_timing_failures.value

    @property
    def deferred_replies(self) -> int:
        return self._m_deferred_replies.value

    @property
    def retries_sent(self) -> int:
        return self._m_retries_sent.value

    @property
    def hedges_sent(self) -> int:
        return self._m_hedges_sent.value

    @property
    def failover_redispatches(self) -> int:
        return self._m_failover_redispatches.value

    @property
    def retry_resolved(self) -> int:
        return self._m_retry_resolved.value

    @property
    def hedge_resolved(self) -> int:
        return self._m_hedge_resolved.value

    @property
    def reads_salvaged(self) -> int:
        return self._m_reads_salvaged.value

    @property
    def overload_replies(self) -> int:
        return self._m_overload_replies.value

    @property
    def reads_shed(self) -> int:
        """Reads the degradation ladder shed locally (never dispatched)."""
        return self._m_reads_shed.value

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def declare_read_only(self, method: str) -> None:
        """§2: the client names its read-only methods explicitly."""
        self.registry.declare(method)

    def invoke(
        self,
        method: str,
        args: tuple = (),
        qos: Optional[QoSSpec] = None,
        callback: Optional[OutcomeCallback] = None,
    ) -> int:
        """Invoke a method on the replicated service; returns the request id.

        Reads require a QoS specification (per-call or ``default_qos``);
        updates ignore timeliness (§2: "the timeliness attribute is
        applicable only for read-only requests").
        """
        kind = self.registry.kind_of(method)
        if kind is RequestKind.READ:
            spec = qos or self.default_qos
            if spec is None:
                raise ValueError(f"read {method!r} needs a QoS specification")
            return self._issue_read(method, args, spec, callback)
        return self._issue_update(method, args, callback)

    def call(self, method: str, args: tuple = (), qos: Optional[QoSSpec] = None) -> Signal:
        """Process-friendly variant: returns a Signal fired with the outcome.

        Usage inside a workload generator::

            outcome = yield client.call("get", (), qos)
        """
        done = Signal(f"{self.name}.call")
        self.invoke(method, args, qos, callback=done.fire)
        return done

    @property
    def timely_fraction(self) -> float:
        """Observed frequency of timely responses so far (1.0 before data)."""
        if self.reads_judged == 0:
            return 1.0
        return 1.0 - self.timing_failures / self.reads_judged

    @property
    def observed_failure_probability(self) -> float:
        if self.reads_judged == 0:
            return 0.0
        return self.timing_failures / self.reads_judged

    def average_selected(self) -> float:
        if not self.selected_counts:
            return 0.0
        return sum(self.selected_counts) / len(self.selected_counts)

    def prediction_cache_stats(self) -> dict[str, int]:
        """Pmf-cache hit/miss/invalidation counters (benchmark reporting)."""
        return self.predictor.cache_stats

    # ------------------------------------------------------------------
    # Update path (§5: multicast to all primaries)
    # ------------------------------------------------------------------
    def _issue_update(
        self, method: str, args: tuple, callback: Optional[OutcomeCallback]
    ) -> int:
        request = Request(
            request_id=next_request_id(),
            client=self.name,
            method=method,
            args=args,
            kind=RequestKind.UPDATE,
            qos=None,
            sent_at=self.now,
            context=self._update_context(),
        )
        targets = list(self.view_of(self.groups.primary).members)
        pending = _PendingCall(
            request=request,
            t0=self.now,
            tm=self.now,
            qos=None,
            callback=callback,
            selected=tuple(targets),
        )
        self._pending[request.request_id] = pending
        self._remember_tm(request.request_id, pending.tm)
        pending.gc_event = self.sim.schedule(
            self.gc_timeout, self._garbage_collect, request.request_id
        )
        if self.trace.enabled:
            emit_span(
                self.trace, self.now, self.name,
                span_root(request.request_id), "update", method=method,
            )
        for target in targets:
            self._emit_dispatch(pending, target, "update")
            self.gsend(self.groups.qos, target, request)
        self._m_updates_issued.inc()
        self.trace.emit(
            self.now, "client.update", self.name,
            request_id=request.request_id, targets=targets,
        )
        return request.request_id

    # ------------------------------------------------------------------
    # Read path (§5.3)
    # ------------------------------------------------------------------
    def _issue_read(
        self,
        method: str,
        args: tuple,
        qos: QoSSpec,
        callback: Optional[OutcomeCallback],
    ) -> int:
        t0 = self.now
        if self.qos_actuation is not None:
            # Controller-prescribed class knob first (clamped inside
            # apply()); the degradation ladder may relax further below.
            qos = self.qos_actuation.apply(qos)
        if self.degradation is not None:
            relaxed = self.degradation.admit(qos, self.priority)
            if relaxed is None:
                return self._shed_read_locally(callback)
            qos = relaxed
        started = time.perf_counter()
        selection, predicted = self._select_replicas(qos)
        overhead = time.perf_counter() - started
        self.selection_overheads.append(overhead)
        self._h_selection_overhead.observe(overhead)

        request = Request(
            request_id=next_request_id(),
            client=self.name,
            method=method,
            args=args,
            kind=RequestKind.READ,
            qos=qos,
            sent_at=t0,
            context=self._read_context(),
        )
        tm = t0 + (overhead if self.charge_selection_overhead else 0.0)
        pending = _PendingCall(
            request=request,
            t0=t0,
            tm=tm,
            qos=qos,
            callback=callback,
            selected=selection,
        )
        pending.live = set(selection)
        pending.tried = set(selection)
        pending.predicted = predicted
        self._pending[request.request_id] = pending
        self._remember_tm(request.request_id, tm)
        self._m_reads_issued.inc()
        self._m_replicas_selected.inc(len(selection))
        self.selected_counts.append(len(selection))
        if self.trace.enabled:
            emit_span(
                self.trace, self.now, self.name,
                span_root(request.request_id), "read",
                method=method, deadline=qos.deadline,
                min_probability=qos.min_probability,
                predicted=predicted, selected=len(selection),
            )
            for target in selection:
                self._emit_dispatch(pending, target, "select")

        targets = list(selection)
        policy = self.retry_policy
        # Suspicion-triggered hedging: when the sole selected replica has
        # an elevated (not yet ejectable) φ, hedge even below the
        # checkpoint-fraction policy's min_probability trigger.
        suspicion_hedge = (
            policy is not None
            and policy.hedge
            and len(selection) == 1
            and self.detector is not None
            and self.detector.phi(selection[0], self.now)
            >= self.detector.config.phi_hedge
        )
        if (
            policy is not None
            and policy.hedge
            and len(selection) == 1
            and (
                qos.min_probability >= policy.hedge_min_probability
                or suspicion_hedge
            )
        ):
            # Hedge a demanding single-replica read: duplicate it to the
            # runner-up so one slow/crashed replica cannot sink P_c(d).
            extra = self._next_best_replica(qos, pending.tried, qos.deadline)
            if extra is not None:
                targets.append(extra)
                pending.live.add(extra)
                pending.tried.add(extra)
                pending.hedge_targets.add(extra)
                self._m_hedges_sent.inc()
                if suspicion_hedge:
                    self._m_detector_hedges.inc()
                self._emit_dispatch(pending, extra, "hedge")
        if self.detector is not None:
            # Probe traffic keeps ejected replicas observable: without it
            # an ejected peer would produce no arrivals and stay ejected
            # after its gray fault healed.
            for peer in self.detector.suspected():
                if peer in targets:
                    continue
                if self.detector.should_probe(peer, self.now):
                    targets.append(peer)
                    pending.tried.add(peer)
                    self._m_detector_probes.inc()
                    self._emit_dispatch(pending, peer, "probe")
        if self.has_sequencer:
            sequencer = self.view_of(self.groups.primary).leader
            if sequencer is not None and sequencer not in targets:
                targets.append(sequencer)  # line 13/16: K extended with it
                self._emit_dispatch(pending, sequencer, "sequencer")

        def transmit() -> None:
            for target in targets:
                self.gsend(self.groups.qos, target, request)

        if tm > t0:
            self.sim.schedule(tm - t0, transmit)
        else:
            transmit()

        # The timing-failure detector arms a timer at the deadline.
        pending.deadline_event = self.sim.schedule(
            qos.deadline, self._on_deadline, request.request_id
        )
        if policy is not None and policy.max_retries > 0:
            pending.retry_event = self.sim.schedule(
                qos.deadline * policy.checkpoint_fraction,
                self._retry_checkpoint,
                request.request_id,
            )
            if self.detector is not None:
                self.sim.schedule(
                    qos.deadline * policy.checkpoint_fraction / 2.0,
                    self._suspicion_checkpoint,
                    request.request_id,
                )
        pending.gc_event = self.sim.schedule(
            max(self.gc_timeout, 2 * qos.deadline),
            self._garbage_collect,
            request.request_id,
        )
        self.trace.emit(
            self.now, "client.read", self.name,
            request_id=request.request_id, selected=list(selection),
        )
        return request.request_id

    def _remember_tm(self, request_id: int, tm: float) -> None:
        self._recent_tm[request_id] = tm
        while len(self._recent_tm) > 4096:
            self._recent_tm.popitem(last=False)

    def _shed_read_locally(self, callback: Optional[OutcomeCallback]) -> int:
        """The degradation ladder refused this read before dispatch.

        The application gets a failed :class:`ReadOutcome` on the next
        simulation step; the read never reaches a replica and never enters
        the timing statistics (``reads_shed`` accounts for it instead, so
        ``observed_failure_probability`` keeps describing attempted reads).
        """
        request_id = next_request_id()
        self._m_reads_shed.inc()
        self.trace.emit(
            self.now, "client.shed", self.name,
            request_id=request_id, level=self.degradation.level
            if self.degradation is not None else 0,
        )
        if callback is not None:
            outcome = ReadOutcome(
                request_id=request_id,
                value=None,
                response_time=None,
                timing_failure=True,
                replicas_selected=0,
                first_replica=None,
                deferred=False,
                gsn=-1,
            )
            self.sim.schedule(0.0, callback, outcome)
        return request_id

    def _select_replicas(
        self, qos: QoSSpec
    ) -> tuple[tuple[str, ...], Optional[float]]:
        candidates = self._candidates(qos)
        if self.degradation is not None and self.degradation.prefer_secondaries:
            # Ladder level >= prefer_secondaries_level: push read load off
            # the (update-serving) primaries onto the lazier secondaries
            # whenever any secondary is a candidate at all.
            secondaries = [c for c in candidates if not c.is_primary]
            if secondaries:
                candidates = secondaries
        if self.detector is not None:
            candidates = self._eject_suspects(candidates)
        stale_factor = self.predictor.staleness_factor(
            qos.staleness_threshold, self.now
        )
        result = self.strategy.select(candidates, qos, stale_factor)
        predicted: Optional[float] = None
        if self.calibration is not None or self.trace.enabled:
            # The calibration forecast folds in *all* selected replicas —
            # SelectionResult.predicted_probability deliberately excludes
            # the best one (fault tolerance) and would read conservative.
            predicted = set_success_probability(
                candidates,
                result.replicas,
                stale_factor,
                getattr(self.strategy, "correlated_deferral", False),
            )
        return result.replicas, predicted

    def _eject_suspects(
        self, candidates: list[ReplicaView]
    ) -> list[ReplicaView]:
        """Drop φ-suspected candidates before Algorithm 1 runs.

        Ejection is advisory, never total: if fewer than
        ``min_eject_keep`` candidates would survive, the detector stands
        aside and Algorithm 1 sees the full set (a detector in a
        panicking state must not be able to starve selection).  Ejected
        replicas stay in the repository and keep receiving probe traffic
        (:meth:`PhiAccrualDetector.should_probe`), so one on-time reply
        re-admits them.
        """
        assert self.detector is not None
        detector = self.detector
        now = self.now
        healthy: list[ReplicaView] = []
        ejected: list[str] = []
        for view in candidates:
            detector.suspicion_check(view.name, now)
            # is_suspected covers both the latched state (threshold may
            # have been crossed on an earlier check) and the flap-damping
            # quarantine, which outlives the clearing arrival.
            if detector.is_suspected(view.name, now):
                ejected.append(view.name)
            else:
                healthy.append(view)
        if not ejected or len(healthy) < detector.config.min_eject_keep:
            return candidates
        self._m_detector_ejections.inc(len(ejected))
        self.trace.emit(
            self.now, "client.eject", self.name, ejected=ejected
        )
        return healthy

    # ------------------------------------------------------------------
    # Aggregate-tier hooks (repro.workloads.aggregate)
    # ------------------------------------------------------------------
    def candidate_views(self, qos: QoSSpec) -> list[ReplicaView]:
        """The §5.3 candidate set, as the read path would build it.

        Public accessor for the aggregated client tier, which runs
        Algorithm 1 once per arrival *batch* over exactly these views
        instead of once per simulated client.
        """
        return self._candidates(qos)

    def record_aggregate_batch(
        self,
        count: int,
        timing_failures: int,
        deferred: int,
        replicas_selected: int,
        response_times,
    ) -> None:
        """Fold one batch of analytically resolved reads into the counters.

        The aggregated client tier accounts whole arrival batches here so
        telemetry consumers (``client_*`` counters, the response-time
        histogram, ``timely_fraction``) see modeled traffic exactly as
        they see discrete traffic.  ``response_times`` covers the timely
        reads that produced a response; per-read Python-side lists
        (``response_times``/``selected_counts``) are deliberately *not*
        grown — at millions of modeled reads they would dominate memory.
        """
        if count <= 0:
            return
        self._m_reads_issued.inc(count)
        self._m_reads_resolved.inc(count)
        self._m_reads_judged.inc(count)
        self._m_timing_failures.inc(timing_failures)
        self._m_deferred_replies.inc(deferred)
        self._m_replicas_selected.inc(replicas_selected)
        self._h_response_time.observe_many(response_times)

    def _emit_dispatch(self, pending: _PendingCall, target: str, reason: str) -> None:
        """Span for one transmission of the request to one target."""
        if not self.trace.enabled:
            return
        root = span_root(pending.request.request_id)
        span_id = f"{root}/d{pending.dispatches}"
        pending.dispatches += 1
        emit_span(
            self.trace, self.now, self.name, span_id, "dispatch",
            parent_id=root, target=target, reason=reason,
        )

    def _judge(self, pending: _PendingCall, timely: bool) -> None:
        """One-shot verdict hook: calibration sample + judgement span.

        Called exactly once per read, at whichever of reply / deadline /
        garbage-collection first decides the timing outcome.
        """
        if self.calibration is not None and pending.predicted is not None:
            self.calibration.observe(self.strategy.name, pending.predicted, timely)
        if self.trace.enabled:
            root = span_root(pending.request.request_id)
            emit_span(
                self.trace, self.now, self.name, f"{root}/j", "judge",
                parent_id=root, timely=timely, predicted=pending.predicted,
            )

    def _candidates(self, qos: QoSSpec) -> list[ReplicaView]:
        """Build the ``V`` tuples of Algorithm 1 from the repository.

        Goes through the predictor's fused :meth:`~repro.core.prediction
        .ResponseTimePredictor.candidate_cdfs` — one call for the whole
        candidate set instead of one method per replica.  ``ert`` reads
        repository state the predictor never writes, so splitting the loop
        in two leaves every value (and every counter) unchanged.
        """
        primary_view = self.view_of(self.groups.primary)
        secondary_view = self.view_of(self.groups.secondary)
        sequencer = primary_view.leader if self.has_sequencer else None
        primaries = [m for m in primary_view.members if m != sequencer]
        secondaries = list(secondary_view.members)
        primary_cdfs, secondary_pairs = self.predictor.candidate_cdfs(
            primaries, secondaries, qos.deadline
        )
        ert = self.repository.ert
        now = self.now
        views: list[ReplicaView] = []
        for member, cdf in zip(primaries, primary_cdfs):
            views.append(
                ReplicaView(
                    name=member,
                    is_primary=True,
                    immediate_cdf=cdf,
                    delayed_cdf=cdf,  # unused for primaries (§5.3)
                    ert=ert(member, now),
                )
            )
        for member, (immediate, delayed) in zip(secondaries, secondary_pairs):
            views.append(
                ReplicaView(
                    name=member,
                    is_primary=False,
                    immediate_cdf=immediate,
                    delayed_cdf=delayed,
                    ert=ert(member, now),
                )
            )
        return views

    # ------------------------------------------------------------------
    # Inbound traffic
    # ------------------------------------------------------------------
    def on_group_message(self, group: str, sender: str, payload: Any) -> None:
        if isinstance(payload, Reply):
            self._on_reply(payload)
        elif isinstance(payload, OverloadReply):
            self._on_overload(payload)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PerfBroadcast):
            self.repository.record_broadcast(payload)
            self.repository.record_staleness(payload, self.now)
            if self.detector is not None:
                self.detector.record(payload.replica, self.now)

    # ------------------------------------------------------------------
    # Protocol-specific context hooks (overridden by the causal handler)
    # ------------------------------------------------------------------
    def _update_context(self) -> Any:
        """Piggyback attached to outgoing updates (None by default)."""
        return None

    def _read_context(self) -> Any:
        """Piggyback attached to outgoing reads (None by default)."""
        return None

    def _absorb_context(self, reply: Reply) -> None:
        """Fold a reply's protocol context into client state (no-op)."""

    def _on_reply(self, reply: Reply) -> None:
        tp = self.now
        is_read = reply.kind is RequestKind.READ
        self._absorb_context(reply)
        if self.detector is not None:
            self.detector.record(reply.replica, tp)
        pending = self._pending.get(reply.request_id)
        # Even late/duplicate replies refresh the monitoring state (§5.4).
        if pending is not None:
            tm = pending.tm
        else:
            tm = self._recent_tm.get(reply.request_id)
        if tm is not None:
            tg = tp - tm - reply.t1
            self.repository.record_reply(reply.replica, tg, tp, read=is_read)
        if pending is None:
            return
        if pending.completed:
            return
        pending.completed = True
        if pending.deadline_event is not None:
            pending.deadline_event.cancel()
        if pending.gc_event is not None:
            pending.gc_event.cancel()
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        del self._pending[reply.request_id]

        response_time = tp - pending.t0
        if pending.request.kind is RequestKind.READ:
            assert pending.qos is not None
            timing_failure = pending.failed or response_time > pending.qos.deadline
            self._m_reads_resolved.inc()
            if self.degradation is not None and not timing_failure:
                # Quiet evidence: the ladder may hysteretically step back up.
                self._record_step(self.degradation.note_ok(self.now))
            if not pending.failed:
                self._m_reads_judged.inc()
                if timing_failure:
                    self._m_timing_failures.inc()
                self._judge(pending, timely=not timing_failure)
            elif reply.value is not None:
                self._m_reads_salvaged.inc()
            if reply.replica in pending.retry_targets:
                self._m_retry_resolved.inc()
            elif reply.replica in pending.hedge_targets:
                self._m_hedge_resolved.inc()
            if reply.deferred:
                self._m_deferred_replies.inc()
            self.response_times.append(response_time)
            self._h_response_time.observe(response_time)
            outcome = ReadOutcome(
                request_id=reply.request_id,
                value=reply.value,
                response_time=response_time,
                timing_failure=timing_failure,
                replicas_selected=len(pending.selected),
                first_replica=reply.replica,
                deferred=reply.deferred,
                gsn=reply.gsn,
            )
            self._check_violation(pending.qos)
        else:
            self._m_updates_resolved.inc()
            outcome = UpdateOutcome(
                request_id=reply.request_id,
                value=reply.value,
                response_time=response_time,
                first_replica=reply.replica,
                gsn=reply.gsn,
            )
        if self.trace.enabled:
            root = span_root(reply.request_id)
            emit_span(
                self.trace, self.now, self.name, f"{root}/r", "reply",
                parent_id=root, replica=reply.replica,
                response_time=response_time, gsn=reply.gsn,
                deferred=reply.deferred,
            )
        self.trace.emit(
            self.now, "client.reply", self.name,
            request_id=reply.request_id, replica=reply.replica,
            response_time=response_time,
        )
        if pending.callback is not None:
            pending.callback(outcome)

    # ------------------------------------------------------------------
    # Overload replies and the degradation ladder (DESIGN.md §11)
    # ------------------------------------------------------------------
    def _on_overload(self, bounce: OverloadReply) -> None:
        """A replica shed one of our reads instead of serving it late."""
        if self.detector is not None:
            # A bounce is still evidence of life (overloaded, not gray).
            self.detector.record(bounce.replica, self.now)
        self._m_overload_replies.inc()
        until = self.now + bounce.retry_after
        if until > self._shed_until.get(bounce.replica, 0.0):
            self._shed_until[bounce.replica] = until
        self.trace.emit(
            self.now, "client.overload-reply", self.name,
            request_id=bounce.request_id, replica=bounce.replica,
            reason=bounce.reason, retry_after=bounce.retry_after,
            queue_depth=bounce.queue_depth, pressure=bounce.pressure,
        )
        if self.degradation is not None:
            self._record_step(self.degradation.note_overload(self.now))
        pending = self._pending.get(bounce.request_id)
        if pending is None or pending.completed:
            return
        pending.live.discard(bounce.replica)
        if pending.live:
            return  # another selected replica may still answer
        # Every live target shed (or died): re-dispatch to a replica that
        # is not backing us off, or wake when the earliest back-off ends.
        if not self._retry_dispatch(pending, reason="overload"):
            self._schedule_backoff_retry(pending)

    def _backed_off(self) -> set[str]:
        """Replicas we must not dispatch to yet (retry_after pending)."""
        now = self.now
        return {r for r, t in self._shed_until.items() if t > now}

    def _schedule_backoff_retry(self, pending: _PendingCall) -> None:
        """Arm a retry at the earliest back-off expiry — never before.

        This is what keeps an :class:`OverloadReply` from burning the
        retry budget immediately: instead of hammering the shedding
        replica (or giving up), the read sleeps until some replica accepts
        dispatches again, provided the deadline budget still allows it.
        """
        policy = self.retry_policy
        if policy is None or pending.qos is None:
            return
        if pending.retries >= policy.max_retries:
            return
        waits = [t for t in self._shed_until.values() if t > self.now]
        if not waits:
            return
        wake = min(waits)
        deadline_at = pending.t0 + pending.qos.deadline
        if wake > deadline_at - policy.min_remaining_budget:
            return  # it could not finish in time anyway
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        pending.retry_event = self.sim.schedule(
            wake - self.now, self._retry_checkpoint, pending.request.request_id
        )

    def force_degradation(self, level: int, trigger: str = "controller") -> None:
        """Controller-driven ladder actuation (DESIGN.md §16).

        Unlike the evidence-driven ``note_*`` paths, this pins the ladder
        at ``level`` directly; the transition is recorded through the
        same audited ``_record_step`` path so the degradation counters,
        spans, and policy history stay in agreement.
        """
        if self.degradation is None:
            return
        self._record_step(self.degradation.force_level(self.now, level, trigger))

    def _record_step(self, step) -> None:
        """Account one degradation-ladder transition (telemetry + spans)."""
        if step is None:
            return
        if step.down:
            self._m_steps_down.inc()
        else:
            self._m_steps_up.inc()
        self._g_degradation_level.set(step.to_level)
        self.trace.emit(
            self.now, "client.degradation", self.name,
            from_level=step.from_level, to_level=step.to_level,
            trigger=step.trigger,
        )
        if self.trace.enabled:
            assert self.degradation is not None
            emit_span(
                self.trace, self.now, self.name,
                f"degrade/{self.name}/{len(self.degradation.steps)}",
                "degrade",
                from_level=step.from_level, to_level=step.to_level,
                trigger=step.trigger,
            )

    # ------------------------------------------------------------------
    # Timing-failure detection (§5.4)
    # ------------------------------------------------------------------
    def _on_deadline(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.completed or pending.failed:
            return
        # No reply by the deadline: a timing failure, counted once even if
        # a (late) reply arrives afterwards.
        pending.failed = True
        self._m_timing_failures.inc()
        self._m_reads_judged.inc()
        self._judge(pending, timely=False)
        self.trace.emit(
            self.now, "client.timing-failure", self.name, request_id=request_id
        )
        if pending.qos is not None:
            self._check_violation(pending.qos)

    # ------------------------------------------------------------------
    # Deadline-budget-aware retry (DESIGN.md §9)
    # ------------------------------------------------------------------
    def _suspicion_checkpoint(self, request_id: int) -> None:
        """Early no-reply check driven by live suspicion (DESIGN.md §14).

        Fires at half the checkpoint delay.  The checkpoint-fraction
        policy waits a fixed share of the deadline; but when a live
        target's φ has meanwhile climbed past ``phi_hedge`` — or the
        target has been latched or quarantined outright — the dispatch
        raced a gray fault the detector has since noticed, and waiting
        out the rest of the checkpoint only converts a salvageable read
        into a deadline race.  Re-dispatch immediately instead.  A read
        still unanswered this late with a *healthy* live set is left to
        the ordinary checkpoint, so the hedge stays evidence-driven.
        """
        pending = self._pending.get(request_id)
        if pending is None or pending.completed or self.detector is None:
            return
        if not pending.live:
            return  # the overload/failover paths own empty-live re-dispatch
        cfg = self.detector.config
        now = self.now
        if not any(
            self.detector.is_suspected(target, now)
            or self.detector.phi(target, now) >= cfg.phi_hedge
            for target in pending.live
        ):
            return
        if self._retry_dispatch(pending, reason="suspicion"):
            # The hedge is budget-neutral: it must not consume the
            # policy's retry allowance, or a hedge aimed at a second
            # gray replica would leave the ordinary checkpoint with no
            # retry left and convert a salvageable read into a deadline
            # miss.
            pending.retries -= 1
            self._m_detector_hedges.inc()

    def _retry_checkpoint(self, request_id: int) -> None:
        """Periodic no-reply checkpoint while a read is in flight."""
        pending = self._pending.get(request_id)
        if pending is None or pending.completed:
            return
        pending.retry_event = None
        if self._retry_dispatch(pending, reason="timeout"):
            self._arm_retry_checkpoint(pending)

    def _arm_retry_checkpoint(self, pending: _PendingCall) -> None:
        policy = self.retry_policy
        if policy is None or pending.qos is None:
            return
        if pending.retries >= policy.max_retries:
            return
        remaining = (pending.t0 + pending.qos.deadline) - self.now
        delay = remaining * policy.checkpoint_fraction
        if delay <= 0.0:
            return
        pending.retry_event = self.sim.schedule(
            delay, self._retry_checkpoint, pending.request.request_id
        )

    def _retry_dispatch(self, pending: _PendingCall, reason: str) -> bool:
        """Re-issue a read to the next-best untried replica.

        Returns True iff a retry was actually sent.  Guards: a policy is
        configured, the read is still open, the retry budget and the
        remaining deadline budget both allow it, and an untried candidate
        exists.
        """
        policy = self.retry_policy
        if policy is None or pending.qos is None:
            return False
        if pending.completed or pending.retries >= policy.max_retries:
            return False
        remaining = (pending.t0 + pending.qos.deadline) - self.now
        if remaining < policy.min_remaining_budget:
            return False
        # Replicas actively backing us off (OverloadReply.retry_after) are
        # never retried before their back-off elapses.
        exclude = pending.tried | self._backed_off()
        target = None
        if self.detector is not None:
            # Route the retry around suspects too — a retry exists
            # because the first dispatch is already in trouble, so
            # aiming it at a peer the detector has since latched would
            # burn the remaining deadline budget on a second gray
            # replica.  Advisory only: if no unsuspected candidate
            # remains, fall through to the unfiltered set.
            suspects = self.detector.under_suspicion(self.now)
            if suspects:
                target = self._next_best_replica(
                    pending.qos, exclude | suspects, remaining
                )
        if target is None:
            target = self._next_best_replica(pending.qos, exclude, remaining)
        if target is None:
            return False
        pending.retries += 1
        pending.tried.add(target)
        pending.live.add(target)
        pending.retry_targets.add(target)
        self._m_retries_sent.inc()
        self._emit_dispatch(pending, target, reason)
        self.gsend(self.groups.qos, target, pending.request)
        self.trace.emit(
            self.now, "client.retry", self.name,
            request_id=pending.request.request_id, target=target,
            reason=reason, remaining=remaining, attempt=pending.retries,
        )
        return True

    def _next_best_replica(
        self, qos: QoSSpec, exclude: set[str], deadline: float
    ) -> Optional[str]:
        """Rank the candidates of §5.3 by P(response <= remaining budget)
        and return the best one not yet tried (deterministic tie-break)."""
        best_name: Optional[str] = None
        best_score = -1.0
        stale_factor = self.predictor.staleness_factor(
            qos.staleness_threshold, self.now
        )
        for view in self._candidates(qos):
            if view.name in exclude:
                continue
            if view.is_primary:
                score = self.predictor.immediate_cdf(view.name, deadline)
            else:
                immediate, delayed = self.predictor.response_cdfs(
                    view.name, deadline
                )
                score = stale_factor * immediate + (1.0 - stale_factor) * delayed
            if score > best_score or (
                score == best_score
                and (best_name is None or view.name < best_name)
            ):
                best_name = view.name
                best_score = score
        return best_name

    def on_view_change(self, view: "View", previous: Optional["View"]) -> None:
        """Evictions of every live selected replica trigger an immediate
        re-dispatch instead of waiting for the no-reply checkpoint."""
        if previous is None:
            return
        if view.group not in (self.groups.primary, self.groups.secondary):
            return
        gone = set(previous.members) - set(view.members)
        if not gone:
            return
        if self.detector is not None:
            # Departed peers produce no more arrivals; keeping their φ
            # state would pin them suspected forever.  Crash-style
            # eviction belongs to the membership service — the detector
            # only tracks peers that can still come back gray.
            for peer in gone:
                self.detector.forget(peer)
        if self.retry_policy is None:
            return
        for pending in list(self._pending.values()):
            if pending.request.kind is not RequestKind.READ:
                continue
            if pending.completed or not (pending.live & gone):
                continue
            pending.live -= gone
            if pending.live:
                continue  # another selected replica may still answer
            if self._retry_dispatch(pending, reason="failover"):
                self._m_failover_redispatches.inc()

    def recovery_stats(self) -> dict[str, int]:
        """Retry/hedge/failover/overload counters for the reports."""
        return {
            "retries_sent": self.retries_sent,
            "hedges_sent": self.hedges_sent,
            "failover_redispatches": self.failover_redispatches,
            "retry_resolved": self.retry_resolved,
            "hedge_resolved": self.hedge_resolved,
            "reads_salvaged": self.reads_salvaged,
            "overload_replies": self.overload_replies,
            "reads_shed": self.reads_shed,
            "degradation_steps_down": self._m_steps_down.value,
            "degradation_steps_up": self._m_steps_up.value,
            "detector_ejections": self._m_detector_ejections.value,
            "detector_hedges": self._m_detector_hedges.value,
            "detector_probes": self._m_detector_probes.value,
        }

    def detector_stats(self) -> dict:
        """φ-accrual detector summary ({} when the detector is off)."""
        if self.detector is None:
            return {}
        return self.detector.stats()

    def _check_violation(self, qos: Optional[QoSSpec]) -> None:
        if qos is None or self.on_qos_violation is None:
            return
        if self.reads_resolved > 0 and self.timely_fraction < qos.min_probability:
            self.on_qos_violation(self.observed_failure_probability)

    def _garbage_collect(self, request_id: int) -> None:
        """Abandon a request that will never complete (e.g. all selected
        replicas crashed before replying)."""
        pending = self._pending.pop(request_id, None)
        if pending is None or pending.completed:
            return
        pending.completed = True
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        if pending.request.kind is RequestKind.READ:
            self._m_reads_resolved.inc()
            if not pending.failed:
                self._m_timing_failures.inc()
                self._m_reads_judged.inc()
                self._judge(pending, timely=False)
            outcome: Any = ReadOutcome(
                request_id=request_id,
                value=None,
                response_time=None,
                timing_failure=True,
                replicas_selected=len(pending.selected),
                first_replica=None,
                deferred=False,
                gsn=-1,
            )
        else:
            outcome = None
        self.trace.emit(self.now, "client.gc", self.name, request_id=request_id)
        if pending.callback is not None and outcome is not None:
            pending.callback(outcome)
