"""The client-side gateway of Figure 2.

A client application talks to any number of replicated services through
one :class:`Gateway`; the gateway hosts one *timed consistency handler*
(a :class:`~repro.core.client.ClientHandler`) per service, each using the
protocol appropriate for that service's ordering guarantee — e.g. the
sequential handler for a document-editing service and the FIFO handler for
a banking service, exactly the configuration the figure depicts.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.client import ClientHandler, OutcomeCallback
from repro.core.qos import QoSSpec
from repro.core.selection import SelectionStrategy
from repro.core.service import ReplicatedService


class Gateway:
    """One client's gateway; a facade over per-service handlers."""

    def __init__(self, client_name: str) -> None:
        if not client_name:
            raise ValueError("client name must be non-empty")
        self.client_name = client_name
        self._handlers: dict[str, ClientHandler] = {}

    def connect(
        self,
        service: ReplicatedService,
        read_only_methods: Optional[set[str]] = None,
        default_qos: Optional[QoSSpec] = None,
        strategy: Optional[SelectionStrategy] = None,
        on_qos_violation: Optional[Callable[[float], None]] = None,
    ) -> ClientHandler:
        """Attach a handler for ``service`` (endpoint ``client@service``)."""
        service_name = service.config.name
        if service_name in self._handlers:
            raise ValueError(
                f"{self.client_name!r} already connected to {service_name!r}"
            )
        handler = service.create_client(
            f"{self.client_name}@{service_name}",
            read_only_methods=read_only_methods,
            default_qos=default_qos,
            strategy=strategy,
            on_qos_violation=on_qos_violation,
        )
        self._handlers[service_name] = handler
        return handler

    def handler(self, service_name: str) -> ClientHandler:
        try:
            return self._handlers[service_name]
        except KeyError:
            raise KeyError(
                f"{self.client_name!r} is not connected to {service_name!r}"
            ) from None

    def services(self) -> list[str]:
        return sorted(self._handlers)

    def invoke(
        self,
        service_name: str,
        method: str,
        args: tuple = (),
        qos: Optional[QoSSpec] = None,
        callback: Optional[OutcomeCallback] = None,
    ) -> int:
        """Invoke a method on a connected service through its handler."""
        return self.handler(service_name).invoke(method, args, qos, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gateway {self.client_name} services={self.services()}>"
