"""Timed consistency handlers (Figure 2).

Each ordering guarantee a service offers is implemented as a pair of
gateway handlers — a server-side replica handler and (optionally
specialized) client-side handler.  The paper implements the sequential
handler and depicts a FIFO one; we implement both plus a causal handler,
and expose a registry so further guarantees plug into the same
architecture:

    register_handlers(MyOrdering, MyReplicaHandler, MyClientHandler)

:class:`~repro.core.service.ReplicatedService` resolves its handlers
through this registry.
"""

from typing import Optional, Type

from repro.core.client import ClientHandler
from repro.core.qos import OrderingGuarantee
from repro.core.handlers.sequential import SequentialReplicaHandler
from repro.core.handlers.fifo import FifoReplicaHandler
from repro.core.handlers.causal import CausalClientHandler, CausalReplicaHandler

_REPLICA_HANDLERS: dict[OrderingGuarantee, type] = {
    OrderingGuarantee.SEQUENTIAL: SequentialReplicaHandler,
    OrderingGuarantee.FIFO: FifoReplicaHandler,
    OrderingGuarantee.CAUSAL: CausalReplicaHandler,
}

_CLIENT_HANDLERS: dict[OrderingGuarantee, Type[ClientHandler]] = {
    OrderingGuarantee.SEQUENTIAL: ClientHandler,
    OrderingGuarantee.FIFO: ClientHandler,
    OrderingGuarantee.CAUSAL: CausalClientHandler,
}


def register_handlers(
    ordering: OrderingGuarantee,
    replica_handler: type,
    client_handler: Optional[Type[ClientHandler]] = None,
) -> None:
    """Plug a new (or replacement) consistency handler into the gateway."""
    _REPLICA_HANDLERS[ordering] = replica_handler
    _CLIENT_HANDLERS[ordering] = client_handler or ClientHandler


def replica_handler_for(ordering: OrderingGuarantee) -> type:
    try:
        return _REPLICA_HANDLERS[ordering]
    except KeyError:
        raise NotImplementedError(
            f"no replica handler registered for {ordering!r}"
        ) from None


def client_handler_for(ordering: OrderingGuarantee) -> Type[ClientHandler]:
    try:
        return _CLIENT_HANDLERS[ordering]
    except KeyError:
        raise NotImplementedError(
            f"no client handler registered for {ordering!r}"
        ) from None


__all__ = [
    "SequentialReplicaHandler",
    "FifoReplicaHandler",
    "CausalReplicaHandler",
    "CausalClientHandler",
    "register_handlers",
    "replica_handler_for",
    "client_handler_for",
]
