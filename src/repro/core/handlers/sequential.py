"""The sequential consistency handler (§4.1).

Every update is committed by every (serving) primary replica in the order
of its Global Sequence Number, assigned by the *sequencer* — the leader of
the primary group, which "merely serves as the sequencer and does not
actually service the client's request".  Secondary replicas never execute
updates; a designated primary, the *lazy publisher*, multicasts its state
to the secondary group every ``lazy_update_interval`` (T_L) seconds.

Reads are stamped with the current GSN (not advanced) by the sequencer.  A
replica serves a read once its staleness ``GSN_read − my_CSN`` is within
the client's threshold; a too-stale secondary performs a *deferred read* —
it buffers the request and answers right after the next lazy update,
recording the buffering time ``t_b`` the client-side model uses for
``F^D_R`` (§5.2.2).

Failure handling (the paper omits the details "due to the space
constraint"; DESIGN.md documents our completion): on sequencer crash, the
new primary-group leader collects GSN state from survivors, adopts the
maximum, re-broadcasts assignments others missed, declares unfillable GSNs
as no-op skips, and assigns fresh GSNs to updates that never got one.  The
lazy-publisher role follows view rank automatically, and replicas whose
buffered reads never received a GSN re-request it from the current
sequencer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.core.detector import DetectorConfig, PhiAccrualDetector
from repro.core.overload import OverloadConfig
from repro.core.replica import PendingRequest, ReplicaHandlerBase, ServiceGroups
from repro.core.requests import (
    GsnAssign,
    GsnQuery,
    GsnSkip,
    LazyUpdate,
    PublisherSuspicion,
    Request,
    RequestKind,
    SequencerSyncReply,
    SequencerSyncRequest,
    StalenessInfo,
    StateTransferRelay,
    StateTransferRequest,
    StateTransferSnapshot,
)
from repro.core.state import ReplicatedObject
from repro.core.tuning import AdaptiveLazyController
from repro.groups.membership import View
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import emit_span, span_root
from repro.sim.rng import Distribution, RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace

_ASSIGNMENT_CACHE = 8192  # bounded memory for request-id -> GSN bindings
_RECENT_COMMITS = 2048  # bounded tail used for failover catch-up


class SequentialReplicaHandler(ReplicaHandlerBase):
    """Server-side gateway handler providing sequential consistency."""

    def __init__(
        self,
        name: str,
        groups: ServiceGroups,
        app: ReplicatedObject,
        rng: RngRegistry,
        read_service_time: Distribution,
        update_service_time: Optional[Distribution] = None,
        lazy_update_interval: float = 2.0,
        lazy_controller: Optional["AdaptiveLazyController"] = None,
        gsn_wait_timeout: float = 0.25,
        sync_timeout: float = 0.3,
        trace: Trace = NULL_TRACE,
        publish_performance: bool = True,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        overload: Optional[OverloadConfig] = None,
        detector: Optional[DetectorConfig] = None,
    ) -> None:
        super().__init__(
            name,
            groups,
            app,
            rng,
            read_service_time,
            update_service_time,
            trace=trace,
            publish_performance=publish_performance,
            heartbeat_interval=heartbeat_interval,
            rto=rto,
            metrics=metrics,
            overload=overload,
        )
        if lazy_update_interval <= 0:
            raise ValueError(
                f"lazy update interval must be positive, got {lazy_update_interval!r}"
            )
        self.lazy_update_interval = lazy_update_interval
        self.lazy_controller = lazy_controller
        self.gsn_wait_timeout = gsn_wait_timeout
        self.sync_timeout = sync_timeout

        # T_L actuation precedence (DESIGN.md §16): the configured base,
        # an optional open-loop recommendation (lazy_controller), and an
        # optional closed-loop override set by the ConsistencyController.
        # _apply_lazy_interval() is the *single* writer resolving them;
        # nothing else assigns lazy_update_interval after construction.
        self._base_lazy_interval = lazy_update_interval
        self._controller_interval: Optional[float] = None
        # Back-reference installed by ConsistencyController.register_service
        # so view changes and recovery can re-adopt the interval in force.
        self.controller: Optional[Any] = None

        # §4.1: the pair of protocol variables every gateway handler keeps.
        self.my_gsn = 0
        self.my_csn = 0

        self._assignments: OrderedDict[int, int] = OrderedDict()
        self._update_assignments: OrderedDict[int, int] = OrderedDict()
        self._recent_commits: OrderedDict[int, int] = OrderedDict()
        self._awaiting_gsn: dict[int, PendingRequest] = {}
        self._commit_wait: dict[int, PendingRequest] = {}
        self._update_in_flight: Optional[int] = None
        self._stale_wait: list[tuple[int, PendingRequest]] = []
        self._deferred: list[PendingRequest] = []
        self._skips: set[int] = set()

        # Lazy propagation / staleness accounting (§5.4.1).
        self._lazy_epoch = 0
        self._last_lazy_at = 0.0
        self._updates_since_lazy = 0
        self._updates_since_perf = 0
        self._updates_since_tune = 0
        self._last_tune_at = 0.0
        self._lazy_tick_event = None
        self._perf_anchor = 0.0
        self._m_lazy_updates_sent = self._counter("replica_lazy_updates_sent")
        self._m_lazy_updates_applied = self._counter("replica_lazy_updates_applied")
        self._g_lazy_interval = self.metrics.gauge(
            "replica_lazy_interval_seconds", replica=name
        )
        self._g_lazy_interval.set(lazy_update_interval)

        # Sequencer failover state.
        self._sequencer_active = False
        self._syncing = False
        self._sync_id = 0
        self._sync_replies: dict[str, SequencerSyncReply] = {}
        self._sync_buffer: list[Request] = []
        self._m_gsn_queries_sent = self._counter("replica_gsn_queries_sent")
        self._m_reassignments = self._counter("replica_reassignments")

        # Primary recovery (state transfer; DESIGN.md §9).
        self._recovering = False
        self._xfer_id = 0
        self._xfer_rotation = 0
        self._m_state_transfers_started = self._counter(
            "replica_state_transfers_started"
        )
        self._m_state_transfers_completed = self._counter(
            "replica_state_transfers_completed"
        )
        self._m_state_transfers_served = self._counter(
            "replica_state_transfers_served"
        )
        self._gap_stuck_csn: Optional[int] = None
        self._gap_watch_event = None

        # Gray-failure detection (DESIGN.md §14), default-off.  Two
        # pseudo-peers are tracked: "gsn-assign" (sequencer progress, for
        # the adaptive commit-gap watchdog) and "lazy-publisher" (lazy
        # propagation cadence, for slow-publisher reassignment).
        self.detector: Optional[PhiAccrualDetector] = (
            None
            if detector is None
            else PhiAccrualDetector(
                detector, owner=name, metrics=self.metrics, trace=trace
            )
        )
        self._publisher_override: Optional[str] = None
        self._suspected_publisher: Optional[str] = None
        self._m_publisher_suspicions = self._counter(
            "replica_publisher_suspicions"
        )
        self._m_publisher_reassignments = self._counter(
            "replica_publisher_reassignments"
        )

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def lazy_updates_sent(self) -> int:
        return self._m_lazy_updates_sent.value

    @property
    def lazy_updates_applied(self) -> int:
        return self._m_lazy_updates_applied.value

    @property
    def gsn_queries_sent(self) -> int:
        return self._m_gsn_queries_sent.value

    @property
    def reassignments(self) -> int:
        return self._m_reassignments.value

    @property
    def state_transfers_started(self) -> int:
        return self._m_state_transfers_started.value

    @property
    def state_transfers_completed(self) -> int:
        return self._m_state_transfers_completed.value

    @property
    def state_transfers_served(self) -> int:
        return self._m_state_transfers_served.value

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    @property
    def lazy_publisher_name(self) -> Optional[str]:
        """The designated publisher: the first non-leader primary member.

        The sequencer (rank 0) does not serve requests, so it cannot be
        the publisher; rank order makes the designation deterministic and
        view changes re-designate automatically.  A slow-publisher
        reassignment (detector-driven, DESIGN.md §14) overrides the rank
        designation until the next primary view change.
        """
        members = self.primary_view.members
        if self._publisher_override is not None:
            if self._publisher_override in members:
                return self._publisher_override
            self._publisher_override = None
        if len(members) >= 2:
            return members[1]
        return members[0] if members else None

    @property
    def is_lazy_publisher(self) -> bool:
        return self.lazy_publisher_name == self.name

    def staleness(self) -> int:
        """Current staleness in versions: ``my_GSN − my_CSN`` (§4.1.2)."""
        return max(0, self.my_gsn - self.my_csn)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attached(self, network, host) -> None:
        super().attached(network, host)
        self._perf_anchor = self.now
        self._last_lazy_at = self.now
        self._lazy_tick_event = None
        self._schedule_lazy_tick()
        # Every primary watches its own commit frontier from the start: a
        # commit hole can open without a crash on *this* replica (lossy
        # links or a partition can exhaust a sender's retry budget).
        self._arm_gap_watchdog()
        if self.detector is not None:
            self.sim.schedule(self._publisher_check_interval(), self._publisher_check)
        if self.lazy_controller is not None:
            # The tuning loop runs on its own (faster) cadence so the
            # controller reacts to load changes even while the publish
            # interval is long.
            self._updates_since_tune = 0
            self._last_tune_at = self.now
            self.sim.schedule(self._tune_interval(), self._tune_tick)

    def _schedule_lazy_tick(self) -> None:
        if self._lazy_tick_event is not None:
            self._lazy_tick_event.cancel()
        delay = max(0.0, (self._last_lazy_at + self.lazy_update_interval) - self.now)
        self._lazy_tick_event = self.sim.schedule(delay, self._lazy_tick)

    def _tune_interval(self) -> float:
        # One-second observation windows: fast enough to catch an update
        # storm within a few EWMA steps, long enough that low-rate traffic
        # does not whipsaw the estimate.
        assert self.lazy_controller is not None
        return max(1.0, self.lazy_controller.min_interval)

    def _tune_tick(self) -> None:
        """Fixed-cadence observation + retuning of T_L (adaptive mode)."""
        if self.network is None or self.lazy_controller is None:
            return
        if self.up and self.is_primary:
            elapsed = self.now - self._last_tune_at
            self.lazy_controller.observe(self._updates_since_tune, elapsed)
            self._updates_since_tune = 0
            self._last_tune_at = self.now
            self._apply_lazy_interval()
        self.sim.schedule(self._tune_interval(), self._tune_tick)

    # ------------------------------------------------------------------
    # T_L precedence (DESIGN.md §16)
    # ------------------------------------------------------------------
    def set_controller_interval(self, interval: Optional[float]) -> None:
        """Closed-loop actuation of T_L by the ConsistencyController.

        The closed-loop value takes precedence over the open-loop
        recommendation but stays *bounded* by it: the open-loop tuner
        computes the longest interval still meeting its staleness target,
        so exceeding it would violate a declared consistency bound.
        ``None`` clears the override.
        """
        if interval is not None and interval <= 0:
            raise ValueError(
                f"controller interval must be positive, got {interval!r}"
            )
        self._controller_interval = interval
        self._apply_lazy_interval()

    def _effective_lazy_interval(self) -> float:
        """Resolve the three T_L writers into the interval in force.

        Precedence: closed-loop override, clamped from above by the
        open-loop consistency bound when both are configured; otherwise
        the open-loop recommendation; otherwise the configured base.
        """
        bound = (
            self.lazy_controller.recommended_interval()
            if self.lazy_controller is not None
            else None
        )
        if self._controller_interval is not None:
            if bound is not None:
                return min(self._controller_interval, bound)
            return self._controller_interval
        if bound is not None:
            return bound
        return self._base_lazy_interval

    def _apply_lazy_interval(self) -> None:
        """Single writer for ``lazy_update_interval`` after construction."""
        effective = self._effective_lazy_interval()
        if abs(effective - self.lazy_update_interval) <= 1e-9:
            return
        self.lazy_update_interval = effective
        self._g_lazy_interval.set(effective)
        if self.network is not None:
            self._schedule_lazy_tick()

    def _rearm_controller(self) -> None:
        """Re-adopt the closed-loop T_L after a view change or recovery.

        Mirrors the commit-gap watchdog's re-arm sites: a primary that
        was down (or out of the view) while the controller actuated
        missed the ``set_controller_interval`` call, so it asks the
        controller for the interval currently in force instead of
        resuming with its stale pre-crash value.
        """
        if self.controller is None:
            return
        interval = self.controller.current_interval()
        if interval != self._controller_interval:
            self._controller_interval = interval
            self._apply_lazy_interval()

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------
    def on_group_message(self, group: str, sender: str, payload: Any) -> None:
        if isinstance(payload, Request):
            self._on_request(payload)
        elif isinstance(payload, GsnAssign):
            self._on_assign(payload)
        elif isinstance(payload, LazyUpdate):
            self._on_lazy_update(payload)
        elif isinstance(payload, GsnQuery):
            self._on_gsn_query(payload)
        elif isinstance(payload, SequencerSyncRequest):
            self._on_sync_request(payload)
        elif isinstance(payload, SequencerSyncReply):
            self._on_sync_reply(payload)
        elif isinstance(payload, StateTransferRequest):
            self._on_state_transfer_request(payload)
        elif isinstance(payload, StateTransferRelay):
            self._on_state_transfer_relay(payload)
        elif isinstance(payload, StateTransferSnapshot):
            self._on_state_transfer_snapshot(payload)
        elif isinstance(payload, GsnSkip):
            self._on_skip(payload)
        elif isinstance(payload, PublisherSuspicion):
            self._on_publisher_suspicion(payload)
        else:
            self.trace.emit(
                self.now, "replica.unknown-payload", self.name, kind=type(payload).__name__
            )

    # ------------------------------------------------------------------
    # Request arrival (§4.1.1 updates, §4.1.2 reads)
    # ------------------------------------------------------------------
    def _on_request(self, request: Request) -> None:
        if request.kind is RequestKind.UPDATE:
            if self.is_primary:
                self._updates_since_lazy += 1
                self._updates_since_perf += 1
                self._updates_since_tune += 1
            if self.is_sequencer:
                self._sequence_update(request)
            elif self.is_primary:
                self._buffer_for_gsn(request)
            else:
                self.trace.emit(
                    self.now, "replica.misrouted-update", self.name,
                    request_id=request.request_id,
                )
        else:
            if self.is_sequencer:
                self._sequence_read(request)
            elif self.is_primary or self.is_secondary:
                self._buffer_for_gsn(request)

    def _sequence_update(self, request: Request) -> None:
        """Sequencer role: advance the GSN and broadcast the assignment."""
        if self._syncing:
            self._sync_buffer.append(request)
            return
        self.my_gsn += 1
        assign = GsnAssign(request.request_id, self.my_gsn, advances=True)
        self._remember_assignment(request.request_id, self.my_gsn, update=True)
        self.gmcast(self.groups.primary, assign, size_bytes=64)
        if self.trace.enabled:
            emit_span(
                self.trace, self.now, self.name,
                f"{span_root(request.request_id)}/q", "sequence",
                gsn=self.my_gsn, advances=True,
            )
        self.trace.emit(
            self.now, "sequencer.assign", self.name,
            request_id=request.request_id, gsn=self.my_gsn,
        )

    def _sequence_read(self, request: Request) -> None:
        """Sequencer role: broadcast the current GSN without advancing."""
        assign = GsnAssign(request.request_id, self.my_gsn, advances=False)
        self.gmcast(self.groups.primary, assign, size_bytes=64)
        self.gmcast(self.groups.secondary, assign, size_bytes=64)
        if self.trace.enabled:
            emit_span(
                self.trace, self.now, self.name,
                f"{span_root(request.request_id)}/q", "sequence",
                gsn=self.my_gsn, advances=False,
            )
        self.trace.emit(
            self.now, "sequencer.stamp", self.name,
            request_id=request.request_id, gsn=self.my_gsn,
        )

    def _buffer_for_gsn(self, request: Request) -> None:
        pending = PendingRequest(request=request, arrived_at=self.now)
        gsn = self._assignments.get(request.request_id)
        if gsn is not None:
            self._bind(pending, gsn)
        else:
            self._awaiting_gsn[request.request_id] = pending
            if request.kind is RequestKind.READ:
                self.sim.schedule(
                    self.gsn_wait_timeout, self._gsn_retry, request.request_id
                )

    def _gsn_retry(self, request_id: int) -> None:
        """Re-request a read's GSN if the stamp never arrived (failover)."""
        pending = self._awaiting_gsn.get(request_id)
        if pending is None or not self.up:
            return
        sequencer = self.sequencer_name
        if sequencer is not None and sequencer != self.name:
            self.gsend(
                self.groups.qos, sequencer, GsnQuery(request_id, self.name),
                size_bytes=64,
            )
            self._m_gsn_queries_sent.inc()
        self.sim.schedule(self.gsn_wait_timeout, self._gsn_retry, request_id)

    def _on_gsn_query(self, query: GsnQuery) -> None:
        if not self.is_sequencer:
            return
        assign = GsnAssign(query.request_id, self.my_gsn, advances=False)
        self.gsend(self.groups.qos, query.replica, assign, size_bytes=64)

    # ------------------------------------------------------------------
    # GSN assignment handling
    # ------------------------------------------------------------------
    def _remember_assignment(self, request_id: int, gsn: int, update: bool) -> None:
        self._assignments[request_id] = gsn
        while len(self._assignments) > _ASSIGNMENT_CACHE:
            self._assignments.popitem(last=False)
        if update:
            self._update_assignments[request_id] = gsn
            while len(self._update_assignments) > _ASSIGNMENT_CACHE:
                self._update_assignments.popitem(last=False)

    def _on_assign(self, assign: GsnAssign) -> None:
        if self.detector is not None:
            # Sequencer progress signal: GSN broadcasts arrive at the
            # request rate, so their inter-arrival statistics size the
            # commit-gap watchdog (see _gap_delay).
            self.detector.record("gsn-assign", self.now)
        if assign.advances and assign.request_id in self._recent_commits:
            return  # already committed; a failover re-broadcast
        previous = self._assignments.get(assign.request_id)
        if assign.advances and previous is not None and previous != assign.gsn:
            # Failover reassignment: rebind the buffered update.
            waiting = self._commit_wait.pop(previous, None)
            self._remember_assignment(assign.request_id, assign.gsn, update=True)
            self._m_reassignments.inc()
            if waiting is not None:
                waiting.gsn = assign.gsn
                self._commit_wait[assign.gsn] = waiting
                self._drain_commit_queue()
            return
        self._remember_assignment(assign.request_id, assign.gsn, update=assign.advances)
        pending = self._awaiting_gsn.pop(assign.request_id, None)
        if pending is not None:
            self._bind(pending, assign.gsn)

    def _bind(self, pending: PendingRequest, gsn: int) -> None:
        """Apply a GSN to a buffered request and route it onward."""
        pending.gsn = gsn
        if pending.request.kind is RequestKind.UPDATE:
            self._commit_wait[gsn] = pending
            self._drain_commit_queue()
            return
        # Read: measure staleness against the stamped GSN (§4.1.2).
        self.my_gsn = max(self.my_gsn, gsn)
        staleness = max(0, gsn - self.my_csn)
        threshold = pending.request.staleness_threshold
        if staleness <= threshold:
            self.enqueue_ready(pending)
        elif self.is_secondary:
            if (
                self.overload is not None
                and self.overload.defer_capacity is not None
                and len(self._deferred) >= self.overload.defer_capacity
            ):
                self._shed(pending, "defer-full")
                return
            pending.defer_started_at = self.now
            self._deferred.append(pending)
            if self.overload is not None and self.overload.expire_deferred:
                qos = pending.request.qos
                if qos is not None:
                    # Bounce the read the moment its own deadline passes
                    # (a late reply is a timing failure either way; an
                    # explicit OverloadReply lets the client re-dispatch).
                    delay = max(
                        0.0, pending.request.sent_at + qos.deadline - self.now
                    )
                    self.sim.schedule(
                        delay, self._expire_deferred, pending.request.request_id
                    )
            if self.trace.enabled:
                rid = pending.request.request_id
                emit_span(
                    self.trace, self.now, self.name,
                    f"{span_root(rid)}/b/{self.name}", "defer",
                    staleness=staleness, threshold=threshold,
                    gsn=gsn, csn=self.my_csn,
                )
            self.trace.emit(
                self.now, "replica.defer", self.name,
                request_id=pending.request.request_id,
                staleness=staleness, threshold=threshold,
            )
        else:
            # A primary that is transiently behind: serve once enough
            # updates commit (its state converges without lazy updates).
            pending.stale_wait_started_at = self.now
            self._stale_wait.append((gsn - threshold, pending))

    # ------------------------------------------------------------------
    # Commit ordering
    # ------------------------------------------------------------------
    def _drain_commit_queue(self) -> None:
        while self._update_in_flight is None:
            nxt = self.my_csn + 1
            if nxt in self._skips:
                self._skips.discard(nxt)
                self.my_csn = nxt
                continue
            pending = self._commit_wait.pop(nxt, None)
            if pending is None:
                return
            self._update_in_flight = nxt
            self.enqueue_ready(pending)
            return

    def execute(self, pending: PendingRequest) -> Any:
        value = super().execute(pending)
        if pending.request.kind is RequestKind.UPDATE:
            assert pending.gsn is not None
            self.my_csn = pending.gsn
            self.my_gsn = max(self.my_gsn, self.my_csn)
            self._m_updates_committed.inc()
            self._recent_commits[pending.request.request_id] = pending.gsn
            while len(self._recent_commits) > _RECENT_COMMITS:
                self._recent_commits.popitem(last=False)
        return value

    def after_complete(self, pending: PendingRequest) -> None:
        if pending.request.kind is RequestKind.UPDATE:
            self._update_in_flight = None
            self._drain_commit_queue()
            self._drain_stale_waiters()

    def _drain_stale_waiters(self) -> None:
        if not self._stale_wait:
            return
        still_waiting = []
        for required_csn, pending in self._stale_wait:
            if self.my_csn >= required_csn:
                if pending.stale_wait_started_at is not None:
                    # Attribution: a behind primary's freshness wait is
                    # commit-queue drain time (DESIGN.md §15).
                    pending.stale_wait = (
                        self.now - pending.stale_wait_started_at
                    )
                self.enqueue_ready(pending)
            else:
                still_waiting.append((required_csn, pending))
        self._stale_wait = still_waiting

    def committed_gsn(self) -> int:
        return self.my_csn

    # ------------------------------------------------------------------
    # Lazy update propagation (§3, §4.1.2)
    # ------------------------------------------------------------------
    def _lazy_tick(self) -> None:
        """Fires every T_L on every primary; only the publisher sends.

        All primaries share the tick so their ``updates-since-last-lazy``
        counters stay aligned and a publisher failover needs no handshake.
        """
        if self.network is None:
            return
        if self.up and self.is_primary:
            if self.is_lazy_publisher:
                self._lazy_epoch += 1
                update = LazyUpdate(
                    publisher=self.name,
                    epoch=self._lazy_epoch,
                    csn=self.my_csn,
                    snapshot=self.app.snapshot(),
                    published_at=self.now,
                )
                self.gmcast(self.groups.secondary, update, size_bytes=1024)
                self._m_lazy_updates_sent.inc()
                self.trace.emit(
                    self.now, "lazy.publish", self.name,
                    epoch=self._lazy_epoch, csn=self.my_csn,
                    interval=self.lazy_update_interval,
                )
            self._updates_since_lazy = 0
        # Advance the tick anchor unconditionally: a non-primary (or a
        # crashed primary) must still reschedule one full interval ahead,
        # not spin at zero delay.
        self._last_lazy_at = self.now
        self._schedule_lazy_tick()

    def _on_lazy_update(self, update: LazyUpdate) -> None:
        if not self.is_secondary:
            return
        if self.detector is not None:
            self.detector.record("lazy-publisher", self.now)
            self._suspected_publisher = None
        if update.csn > self.my_csn:
            self.app.restore(update.snapshot)
            self.my_csn = update.csn
            self.my_gsn = max(self.my_gsn, update.csn)
            self._m_lazy_updates_applied.inc()
        # §4.1.2: deferred reads are answered "immediately after receiving
        # the next state update from the lazy publisher".
        deferred, self._deferred = self._deferred, []
        for pending in deferred:
            assert pending.defer_started_at is not None
            pending.tb = self.now - pending.defer_started_at
            # Staleness attribution (DESIGN.md §15): the defer wait splits
            # into the time spent waiting for the publisher to *send*
            # (lazy-publisher lag) and the time the update spent in flight
            # (network delay).  An update already in flight when the read
            # deferred charges the whole wait to the network.
            published = (
                update.published_at
                if update.published_at is not None
                else self.now
            )
            pending.lazy_wait = max(0.0, published - pending.defer_started_at)
            pending.net_wait = self.now - max(
                pending.defer_started_at, published
            )
            self.enqueue_ready(pending)

    # ------------------------------------------------------------------
    # Deferred-read expiry and cleanup (DESIGN.md §11)
    # ------------------------------------------------------------------
    def _expire_deferred(self, request_id: int) -> None:
        """The owning client's deadline passed while the read sat deferred.

        A no-op when the read was already drained by a lazy update (it is
        no longer in the buffer) or the replica is down (recovery cleanup
        bounces whatever remains).
        """
        if not self.up:
            return
        for i, pending in enumerate(self._deferred):
            if pending.request.request_id == request_id:
                del self._deferred[i]
                self._shed(pending, "defer-expired")
                return

    def _fail_deferred(self, reason: str) -> None:
        """Bounce every buffered deferred read with an explicit reply.

        Replaces the silent ``_deferred.clear()`` on view change/recovery:
        a dropped deferred read now produces an
        :class:`~repro.core.requests.OverloadReply`, so the client's retry
        accounting stays honest instead of waiting out a timing failure —
        or worse, receiving a zombie reply after the next lazy update for
        a request it has long since written off.
        """
        dropped, self._deferred = self._deferred, []
        for pending in dropped:
            if self.up and self.network is not None:
                self._shed(pending, reason)

    def flush_pending(self) -> None:
        """Crash-recovery flush also empties the deferred-read buffer.

        Without this, a crashed-and-recovered secondary retained its
        pre-crash ``_deferred`` entries and served them after the next
        lazy update — replies to requests whose clients gave up long ago.
        """
        super().flush_pending()
        self._fail_deferred("defer-dropped-recovery")

    # ------------------------------------------------------------------
    # Staleness broadcast fields (§5.4.1)
    # ------------------------------------------------------------------
    def staleness_info(self) -> Optional[StalenessInfo]:
        """Publisher-only extra fields; resets the ``n_u`` window.

        Called exactly once per performance broadcast by the base class.
        """
        if not self.is_lazy_publisher:
            return None
        info = StalenessInfo(
            n_u=self._updates_since_perf,
            t_u=self.now - self._perf_anchor,
            n_l=self._updates_since_lazy,
            t_l=self.now - self._last_lazy_at,
            # Announce the live interval whenever *any* tuner moves it
            # (open- or closed-loop): clients need T_L for the t_l modulo
            # of §5.4.1, and the configured default they were built with
            # no longer describes reality.
            lazy_interval=(
                self.lazy_update_interval
                if (
                    self.lazy_controller is not None
                    or self._controller_interval is not None
                )
                else None
            ),
        )
        self._updates_since_perf = 0
        self._perf_anchor = self.now
        return info

    # ------------------------------------------------------------------
    # Sequencer failover
    # ------------------------------------------------------------------
    def on_view_change(self, view: View, previous: Optional[View]) -> None:
        if view.group != self.groups.primary:
            return
        # Membership changed: drop any gray-publisher override and fall
        # back to the rank designation of the new view.
        self._publisher_override = None
        # A view change can promote this replica to lazy publisher (or
        # bring it back into the group after the controller moved T_L):
        # re-adopt the closed-loop interval the same way the commit-gap
        # watchdog re-arms.
        self._rearm_controller()
        if view.leader == self.name and not self._sequencer_active:
            self._sequencer_active = True
            if previous is not None and len(previous) > len(view):
                # We inherited the role from a crashed leader: recover GSNs.
                self._start_sync()
        elif view.leader != self.name:
            self._sequencer_active = False

    def _start_sync(self) -> None:
        self._syncing = True
        self._sync_id += 1
        self._sync_replies = {self.name: self._local_sync_reply(self._sync_id)}
        self.gmcast(
            self.groups.primary,
            SequencerSyncRequest(self.name, self._sync_id),
            size_bytes=64,
        )
        self.sim.schedule(self.sync_timeout, self._finish_sync, self._sync_id)
        self.trace.emit(self.now, "sequencer.sync-start", self.name, sync_id=self._sync_id)

    def _local_sync_reply(self, sync_id: int) -> SequencerSyncReply:
        assignments = dict(self._update_assignments)
        assignments.update(self._recent_commits)
        unassigned = sorted(
            rid
            for rid, pending in self._awaiting_gsn.items()
            if pending.request.kind is RequestKind.UPDATE
        )
        return SequencerSyncReply(
            member=self.name,
            sync_id=sync_id,
            max_gsn=max(self.my_gsn, self.my_csn),
            csn=self.my_csn,
            assignments=tuple(sorted(assignments.items(), key=lambda kv: kv[1])),
            unassigned=tuple(unassigned),
        )

    def _on_sync_request(self, request: SequencerSyncRequest) -> None:
        reply = self._local_sync_reply(request.sync_id)
        self.gsend(self.groups.primary, request.new_sequencer, reply, size_bytes=512)

    def _on_sync_reply(self, reply: SequencerSyncReply) -> None:
        if not self._syncing or reply.sync_id != self._sync_id:
            return
        self._sync_replies[reply.member] = reply
        expected = set(self.primary_view.members)
        if expected.issubset(self._sync_replies):
            self._finish_sync(self._sync_id)

    def _finish_sync(self, sync_id: int) -> None:
        if not self._syncing or sync_id != self._sync_id:
            return
        self._syncing = False
        replies = list(self._sync_replies.values())
        union: dict[int, int] = {}
        for reply in replies:
            union.update(dict(reply.assignments))
        max_gsn = max([r.max_gsn for r in replies] + [self.my_gsn, self.my_csn])
        min_csn = min(r.csn for r in replies)
        self.my_gsn = max(self.my_gsn, max_gsn)
        # Re-broadcast assignments members may have missed.
        for rid, gsn in sorted(union.items(), key=lambda kv: kv[1]):
            if gsn > min_csn:
                self.gmcast(
                    self.groups.primary, GsnAssign(rid, gsn, advances=True),
                    size_bytes=64,
                )
        # GSNs nobody can attribute to a request become no-op skips.
        known = set(union.values())
        holes = tuple(
            g for g in range(min_csn + 1, self.my_gsn + 1) if g not in known
        )
        if holes:
            self.gmcast(self.groups.primary, GsnSkip(holes), size_bytes=64)
            self._on_skip(GsnSkip(holes))
        # Updates that never received a GSN get fresh ones, deterministically.
        assigned = set(union)
        fresh = sorted(
            {rid for reply in replies for rid in reply.unassigned} - assigned
        )
        for rid in fresh:
            self.my_gsn += 1
            self._remember_assignment(rid, self.my_gsn, update=True)
            self.gmcast(
                self.groups.primary, GsnAssign(rid, self.my_gsn, advances=True),
                size_bytes=64,
            )
        self.trace.emit(
            self.now, "sequencer.sync-done", self.name,
            max_gsn=self.my_gsn, holes=list(holes), fresh=fresh,
        )
        # Serve anything that arrived mid-sync.
        buffered, self._sync_buffer = self._sync_buffer, []
        for request in buffered:
            self._sequence_update(request)

    def _on_skip(self, skip: GsnSkip) -> None:
        for gsn in skip.gsns:
            if gsn > self.my_csn:
                self._skips.add(gsn)
        self._drain_commit_queue()

    # ------------------------------------------------------------------
    # Primary recovery via state transfer (DESIGN.md §9)
    # ------------------------------------------------------------------
    def begin_state_transfer(self) -> None:
        """Start (or restart) snapshot catch-up from the primary group.

        Called by the service when a crashed primary rejoins, and by the
        commit-gap watchdog when this primary holds a GSN assignment whose
        Request it never received (a client with a stale view multicast the
        update while we were out of the group).  Every local ordering
        buffer is flushed: the donor snapshot supersedes anything buffered
        here, and clients learn outcomes from the surviving primaries'
        replies.
        """
        self._recovering = True
        self._xfer_id += 1
        self._m_state_transfers_started.inc()
        if self._gap_watch_event is not None:
            self._gap_watch_event.cancel()
            self._gap_watch_event = None
        self.flush_pending()  # also bounces deferred reads explicitly
        self._awaiting_gsn.clear()
        self._commit_wait.clear()
        self._stale_wait.clear()
        self._update_in_flight = None
        self.trace.emit(
            self.now, "replica.state-transfer-start", self.name,
            xfer_id=self._xfer_id,
        )
        self._request_state_transfer(self._xfer_id)

    def _request_state_transfer(self, xfer_id: int) -> None:
        if not self._recovering or xfer_id != self._xfer_id or not self.up:
            return
        sequencer = self.sequencer_name
        if sequencer is None or sequencer == self.name:
            # Nobody to ask: we lead (or the view is empty), so no peer
            # holds newer committed state.  Keep the retained state.
            self._recovering = False
            self._m_state_transfers_completed.inc()
            self.trace.emit(
                self.now, "replica.state-transfer-done", self.name,
                donor=None, csn=self.my_csn, gsn=self.my_gsn,
            )
            self._arm_gap_watchdog()
            self._rearm_controller()
            return
        self.gsend(
            self.groups.primary,
            sequencer,
            StateTransferRequest(self.name, xfer_id),
            size_bytes=64,
        )
        # Retry until a snapshot lands: the sequencer ignores requests from
        # members it does not (yet) see in its primary view, the chosen
        # donor may itself be recovering, and the sequencer can fail over
        # mid-transfer (retries re-resolve the current leader).
        self.sim.schedule(self.sync_timeout, self._request_state_transfer, xfer_id)

    def _on_state_transfer_request(self, request: StateTransferRequest) -> None:
        if not self.is_sequencer:
            return
        members = self.primary_view.members
        if request.requester not in members:
            # The rejoin view change has not reached us yet.  Answering now
            # would let assignments made after the snapshot race past the
            # requester; it retries until we see it in the view.
            return
        donors = [m for m in members if m not in (self.name, request.requester)]
        max_gsn = max(self.my_gsn, self.my_csn)
        if not donors:
            # The requester is the only serving primary: no peer holds
            # newer committed state.  Ship our sequencing facts so it at
            # least adopts the authoritative GSN and assignment bindings.
            reply = StateTransferSnapshot(
                member=self.name,
                xfer_id=request.xfer_id,
                csn=-1,
                max_gsn=max_gsn,
                snapshot=None,
                assignments=tuple(
                    sorted(self._update_assignments.items(), key=lambda kv: kv[1])
                ),
            )
            self.gsend(self.groups.primary, request.requester, reply, size_bytes=512)
            return
        # Rotate donors across retries so a donor that is itself mid-
        # recovery (and therefore stays silent) does not wedge the
        # transfer.
        self._xfer_rotation += 1
        donor = donors[self._xfer_rotation % len(donors)]
        self.gsend(
            self.groups.primary,
            donor,
            StateTransferRelay(request.requester, request.xfer_id, max_gsn),
            size_bytes=64,
        )

    def _on_state_transfer_relay(self, relay: StateTransferRelay) -> None:
        if not self.up or self._recovering or relay.requester == self.name:
            return
        assignments = dict(self._update_assignments)
        assignments.update(self._recent_commits)
        commit_wait = tuple(
            (gsn, pending.request)
            for gsn, pending in sorted(self._commit_wait.items())
        )
        unassigned = tuple(
            pending.request
            for _, pending in sorted(self._awaiting_gsn.items())
            if pending.request.kind is RequestKind.UPDATE
        )
        reply = StateTransferSnapshot(
            member=self.name,
            xfer_id=relay.xfer_id,
            csn=self.my_csn,
            max_gsn=max(self.my_gsn, self.my_csn, relay.max_gsn),
            snapshot=self.app.snapshot(),
            commit_wait=commit_wait,
            unassigned=unassigned,
            assignments=tuple(sorted(assignments.items(), key=lambda kv: kv[1])),
            skips=tuple(sorted(g for g in self._skips if g > self.my_csn)),
        )
        self._m_state_transfers_served.inc()
        self.gsend(self.groups.primary, relay.requester, reply, size_bytes=2048)
        self.trace.emit(
            self.now, "replica.state-transfer-serve", self.name,
            requester=relay.requester, csn=self.my_csn,
        )

    def _on_state_transfer_snapshot(self, snap: StateTransferSnapshot) -> None:
        if not self._recovering or snap.xfer_id != self._xfer_id:
            return
        self._recovering = False
        self._m_state_transfers_completed.inc()
        if snap.snapshot is not None:
            self.app.restore(snap.snapshot)
            self.my_csn = snap.csn
        self.my_gsn = max(self.my_gsn, self.my_csn, snap.max_gsn)
        for rid, gsn in snap.assignments:
            self._remember_assignment(rid, gsn, update=True)
        for gsn in snap.skips:
            if gsn > self.my_csn:
                self._skips.add(gsn)
        # The uncommitted log suffix: bound updates we missed the client
        # multicasts for, replayed in GSN order once the queue drains.
        for gsn, request in snap.commit_wait:
            if gsn <= self.my_csn or gsn in self._commit_wait:
                continue
            pending = PendingRequest(request=request, arrived_at=self.now)
            pending.gsn = gsn
            self._commit_wait[gsn] = pending
        # Updates the donor has buffered but the sequencer has not yet
        # assigned: buffer them here too, so the upcoming GsnAssign (which
        # will include us — we are back in the sequencer's view) binds on
        # both replicas.
        for request in snap.unassigned:
            if request.request_id not in self._awaiting_gsn:
                self._buffer_for_gsn(request)
        self.trace.emit(
            self.now, "replica.state-transfer-done", self.name,
            donor=snap.member, csn=self.my_csn, gsn=self.my_gsn,
        )
        self._drain_commit_queue()
        self._drain_stale_waiters()
        self._arm_gap_watchdog()
        self._rearm_controller()

    # ------------------------------------------------------------------
    # Commit-gap watchdog
    # ------------------------------------------------------------------
    def _arm_gap_watchdog(self) -> None:
        """Monitor the commit frontier of a recovered primary.

        A client whose primary view predated our rejoin multicasts its
        updates without us; the sequencer (which does see us) broadcasts
        the GSN assignment to everyone.  We then hold an assignment for
        ``my_csn + 1`` with no Request to execute — a hole no local action
        can fill.  Two consecutive checks with zero progress trigger a
        fresh state transfer (the donor received the multicast, so its
        snapshot commits past the hole).
        """
        if self._gap_watch_event is not None:
            self._gap_watch_event.cancel()
        self._gap_stuck_csn = None
        self._gap_watch_event = self.sim.schedule(
            self._gap_delay(), self._gap_check
        )

    def _gap_delay(self) -> float:
        """Watchdog period: fixed ``2·sync_timeout``, or adaptive.

        With the detector enabled the period follows the observed
        GSN-broadcast cadence (mean + k·σ of inter-arrival times,
        clamped around the fixed fallback), so a busy system notices a
        frozen commit frontier in a fraction of the fixed window while
        an idle one does not cry wolf between sparse updates.
        """
        fallback = 2 * self.sync_timeout
        if self.detector is None:
            return fallback
        return self.detector.adaptive_timeout("gsn-assign", fallback)

    def _gap_check(self) -> None:
        self._gap_watch_event = None
        if self.network is None or self._recovering:
            return  # a state-transfer completion re-arms the watchdog
        hole = self.my_csn + 1
        blocked = (
            self.up
            and self.is_primary
            and not self.is_sequencer  # the sequencer never commits
            and self.my_gsn > self.my_csn
            and self._update_in_flight is None
            and hole not in self._commit_wait
            and hole not in self._skips
        )
        if blocked and self._gap_stuck_csn == self.my_csn:
            # Two consecutive checks with a frozen commit frontier: the
            # Request (or its assignment) for the hole is lost — no
            # retransmission is coming, only a donor snapshot (which
            # committed past the hole) can unblock us.
            self.trace.emit(self.now, "replica.commit-gap", self.name, gsn=hole)
            self.begin_state_transfer()
            return
        self._gap_stuck_csn = self.my_csn if blocked else None
        self._gap_watch_event = self.sim.schedule(
            self._gap_delay(), self._gap_check
        )

    # ------------------------------------------------------------------
    # Slow-publisher detection and reassignment (DESIGN.md §14)
    # ------------------------------------------------------------------
    def _publisher_check_interval(self) -> float:
        # Check a few times per expected lazy interval so a gray
        # publisher is reported within one or two missed propagations.
        return max(self.lazy_update_interval / 2, 0.05)

    def _publisher_check(self) -> None:
        """Secondary-side watchdog over the lazy publisher's cadence.

        A crashed publisher is handled by view changes; this catches the
        *gray* one — alive in the view but propagating so slowly that
        every deferred read on the secondary tier stalls.  Each secondary
        reports once per suspicion episode; the primaries converge on the
        same replacement deterministically, so no coordination round is
        needed.
        """
        if self.network is None or self.detector is None:
            return
        if self.up and self.is_secondary:
            publisher = self.lazy_publisher_name
            self.detector.suspicion_check("lazy-publisher", self.now)
            if publisher is not None and self.detector.is_suspected(
                "lazy-publisher"
            ):
                if self._suspected_publisher != publisher:
                    self._suspected_publisher = publisher
                    self._m_publisher_suspicions.inc()
                    self.trace.emit(
                        self.now, "replica.publisher-suspect", self.name,
                        publisher=publisher,
                    )
                    self.gmcast(
                        self.groups.primary,
                        PublisherSuspicion(suspect=publisher, reporter=self.name),
                        size_bytes=64,
                    )
            elif not self.detector.is_suspected("lazy-publisher"):
                self._suspected_publisher = None
        self.sim.schedule(self._publisher_check_interval(), self._publisher_check)

    def _on_publisher_suspicion(self, sus: PublisherSuspicion) -> None:
        """Primary-side handling of a secondary's gray-publisher report.

        Every primary applies the same pure function of (current view,
        suspect) — the first serving member that is neither the sequencer
        nor the suspect — so the group agrees on the new publisher
        without a coordination round.  The override lasts until the next
        primary view change re-derives the rank designation.
        """
        if not self.is_primary:
            return
        if sus.suspect != self.lazy_publisher_name:
            return  # stale report; the role already moved
        members = self.primary_view.members
        leader = self.primary_view.leader
        replacement = next(
            (m for m in members if m != leader and m != sus.suspect), None
        )
        if replacement is None or replacement == self.lazy_publisher_name:
            return
        self._publisher_override = replacement
        self._m_publisher_reassignments.inc()
        self.trace.emit(
            self.now, "replica.publisher-reassign", self.name,
            suspect=sus.suspect, publisher=replacement, reporter=sus.reporter,
        )
