"""The causal consistency handler.

§2 lists causal ordering among the "well-known ordering guarantees that a
service can offer" alongside sequential and FIFO; the paper implements
only the sequential handler, so this one is our extension — built to slot
into the same Figure 2 gateway architecture.

Semantics (classic causal memory, vector-clock based):

* every client stamps its updates with ``CausalStamp(writer, seq, deps)``
  where ``deps`` is its vector clock — everything the client has written
  or observed through earlier reads;
* each primary commits an update only once its committed vector clock
  covers the update's dependencies and the writer's previous update
  (per-writer FIFO); concurrent updates may commit in different orders on
  different primaries, which causal consistency allows;
* replies carry the replica's committed vector clock; the client merges
  it, so a later update by this client causally follows everything the
  read reflected;
* a read also carries the client's vector clock, and a replica defers it
  until its state covers that clock — giving read-your-writes and
  monotonic reads, with the deferred-read accounting (``t_b``) feeding the
  same ``F^D`` machinery the sequential handler uses;
* lazy propagation ships ``(app snapshot, vector clock)``; a secondary
  adopts a snapshot only when the incoming clock dominates its own.

The reported version number (``Reply.gsn``) is the total of the vector
clock — the count of updates the state reflects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.client import ClientHandler
from repro.core.overload import OverloadConfig
from repro.core.replica import PendingRequest, ReplicaHandlerBase, ServiceGroups
from repro.core.requests import LazyUpdate, Reply, Request, RequestKind
from repro.core.state import ReplicatedObject
from repro.groups.membership import View
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import VectorClock
from repro.sim.rng import Distribution, RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace


@dataclass(frozen=True)
class CausalStamp:
    """Dependency metadata a client attaches to an update."""

    writer: str
    seq: int  # the writer's update number, 1-based
    deps: dict  # vector clock snapshot at issue time

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise ValueError(f"causal seq must be >= 1, got {self.seq!r}")


class CausalReplicaHandler(ReplicaHandlerBase):
    """Server-side gateway handler providing causal consistency."""

    def __init__(
        self,
        name: str,
        groups: ServiceGroups,
        app: ReplicatedObject,
        rng: RngRegistry,
        read_service_time: Distribution,
        update_service_time: Optional[Distribution] = None,
        lazy_update_interval: float = 2.0,
        trace: Trace = NULL_TRACE,
        publish_performance: bool = True,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        overload: Optional["OverloadConfig"] = None,
    ) -> None:
        super().__init__(
            name,
            groups,
            app,
            rng,
            read_service_time,
            update_service_time,
            trace=trace,
            publish_performance=publish_performance,
            heartbeat_interval=heartbeat_interval,
            rto=rto,
            metrics=metrics,
            overload=overload,
        )
        if lazy_update_interval <= 0:
            raise ValueError(
                f"lazy update interval must be positive, got {lazy_update_interval!r}"
            )
        self.lazy_update_interval = lazy_update_interval
        self.vc = VectorClock()
        self._blocked_updates: list[PendingRequest] = []
        self._blocked_reads: list[PendingRequest] = []
        self._update_in_flight = False
        self._lazy_epoch = 0
        self._m_lazy_updates_sent = self._counter("replica_lazy_updates_sent")
        self._m_lazy_updates_applied = self._counter("replica_lazy_updates_applied")
        self.causal_delays = 0  # updates that had to wait for dependencies

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    @property
    def lazy_publisher_name(self) -> Optional[str]:
        return self.primary_view.leader

    @property
    def is_lazy_publisher(self) -> bool:
        return self.lazy_publisher_name == self.name

    def attached(self, network, host) -> None:
        super().attached(network, host)
        self.sim.schedule(self.lazy_update_interval, self._lazy_tick)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def on_group_message(self, group: str, sender: str, payload: Any) -> None:
        if isinstance(payload, Request):
            self._on_request(payload)
        elif isinstance(payload, LazyUpdate):
            self._on_lazy_update(payload)

    def _on_request(self, request: Request) -> None:
        pending = PendingRequest(request=request, arrived_at=self.now)
        if request.kind is RequestKind.UPDATE:
            if not self.is_primary:
                return
            if not isinstance(request.context, CausalStamp):
                raise TypeError(
                    f"causal update {request.request_id} lacks a CausalStamp "
                    "(use the causal client handler)"
                )
            self._blocked_updates.append(pending)
            self._release_updates()
        else:
            if not (self.is_primary or self.is_secondary):
                return
            deps = request.context
            if deps is not None and not self.vc.dominates(VectorClock(deps)):
                # The client has seen state we do not have yet: defer
                # until commits / lazy updates catch up (read-your-writes
                # and monotonic reads).
                pending.defer_started_at = self.now
                self._blocked_reads.append(pending)
            else:
                self.enqueue_ready(pending)

    def _update_ready(self, pending: PendingRequest) -> bool:
        stamp: CausalStamp = pending.request.context
        if self.vc.get(stamp.writer) != stamp.seq - 1:
            return False
        return self.vc.dominates(VectorClock(stamp.deps))

    def _release_updates(self) -> None:
        """Move causally-ready updates to the server queue, one at a time."""
        if self._update_in_flight:
            return
        for index, pending in enumerate(self._blocked_updates):
            if self._update_ready(pending):
                del self._blocked_updates[index]
                self._update_in_flight = True
                self.enqueue_ready(pending)
                return
        if self._blocked_updates:
            self.causal_delays += 1

    def _release_reads(self) -> None:
        still_blocked = []
        for pending in self._blocked_reads:
            deps = pending.request.context
            if deps is None or self.vc.dominates(VectorClock(deps)):
                assert pending.defer_started_at is not None
                pending.tb = self.now - pending.defer_started_at
                self.enqueue_ready(pending)
            else:
                still_blocked.append(pending)
        self._blocked_reads = still_blocked

    @property
    def lazy_updates_sent(self) -> int:
        return self._m_lazy_updates_sent.value

    @property
    def lazy_updates_applied(self) -> int:
        return self._m_lazy_updates_applied.value

    def execute(self, pending: PendingRequest) -> Any:
        value = super().execute(pending)
        if pending.request.kind is RequestKind.UPDATE:
            stamp: CausalStamp = pending.request.context
            self.vc.merge(VectorClock(stamp.deps))
            self.vc.increment(stamp.writer)
            self._m_updates_committed.inc()
        return value

    def after_complete(self, pending: PendingRequest) -> None:
        if pending.request.kind is RequestKind.UPDATE:
            self._update_in_flight = False
            self._release_updates()
            self._release_reads()

    def committed_gsn(self) -> int:
        return self.vc.total()

    def reply_context(self) -> dict:
        return self.vc.as_dict()

    # ------------------------------------------------------------------
    # Lazy propagation
    # ------------------------------------------------------------------
    def _lazy_tick(self) -> None:
        if self.network is None:
            return
        if self.up and self.is_primary and self.is_lazy_publisher:
            self._lazy_epoch += 1
            update = LazyUpdate(
                publisher=self.name,
                epoch=self._lazy_epoch,
                csn=self.vc.total(),
                snapshot=(self.app.snapshot(), self.vc.as_dict()),
            )
            self.gmcast(self.groups.secondary, update, size_bytes=1024)
            self._m_lazy_updates_sent.inc()
        self.sim.schedule(self.lazy_update_interval, self._lazy_tick)

    def _on_lazy_update(self, update: LazyUpdate) -> None:
        if not self.is_secondary:
            return
        app_snapshot, vc_dict = update.snapshot
        incoming = VectorClock(vc_dict)
        if incoming.dominates(self.vc) and incoming.total() > self.vc.total():
            self.app.restore(app_snapshot)
            self.vc = incoming
            self._m_lazy_updates_applied.inc()
            self._release_reads()

    def on_view_change(self, view: View, previous: Optional[View]) -> None:
        # Roles are purely rank-based; nothing to hand over.
        pass


class CausalClientHandler(ClientHandler):
    """Client-side handler maintaining the causal context.

    Tracks a vector clock covering the client's own writes plus everything
    its reads have reflected; stamps updates with ``CausalStamp`` and
    reads with the clock, and merges the clocks replies carry.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.vc = VectorClock()
        self._update_seq = 0

    def _update_context(self) -> CausalStamp:
        deps = self.vc.as_dict()
        self._update_seq += 1
        # Read-your-writes: the client's own clock includes the new write
        # the moment it is issued.
        self.vc.increment(self.name)
        return CausalStamp(writer=self.name, seq=self._update_seq, deps=deps)

    def _read_context(self) -> dict:
        return self.vc.as_dict()

    def _absorb_context(self, reply: Reply) -> None:
        if isinstance(reply.context, dict):
            self.vc.merge(VectorClock(reply.context))
