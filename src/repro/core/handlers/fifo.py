"""The FIFO consistency handler (service B in Figure 2).

The paper's architecture shows per-service timed consistency handlers; it
details only the sequential one, but depicts a banking-style service using
FIFO ordering.  This handler implements that guarantee: updates from one
client are committed in the order that client issued them (which the
reliable per-pair FIFO group channel already provides), with no global
order across clients and therefore no sequencer.

Reads are stamped with the replica's local commit count and served
immediately; the per-replica commit counter still gives clients a version
number, and lazy propagation still keeps a secondary group loosely in sync
so the same probabilistic selection machinery applies (with the staleness
factor pinned to 1, as there is no global version to be stale against).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.overload import OverloadConfig
from repro.core.replica import PendingRequest, ReplicaHandlerBase, ServiceGroups
from repro.core.requests import LazyUpdate, Request, RequestKind
from repro.core.state import ReplicatedObject
from repro.groups.membership import View
from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import Distribution, RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace


class FifoReplicaHandler(ReplicaHandlerBase):
    """Server-side gateway handler providing FIFO consistency."""

    def __init__(
        self,
        name: str,
        groups: ServiceGroups,
        app: ReplicatedObject,
        rng: RngRegistry,
        read_service_time: Distribution,
        update_service_time: Optional[Distribution] = None,
        lazy_update_interval: float = 2.0,
        trace: Trace = NULL_TRACE,
        publish_performance: bool = True,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        overload: Optional["OverloadConfig"] = None,
    ) -> None:
        super().__init__(
            name,
            groups,
            app,
            rng,
            read_service_time,
            update_service_time,
            trace=trace,
            publish_performance=publish_performance,
            heartbeat_interval=heartbeat_interval,
            rto=rto,
            metrics=metrics,
            overload=overload,
        )
        if lazy_update_interval <= 0:
            raise ValueError(
                f"lazy update interval must be positive, got {lazy_update_interval!r}"
            )
        self.lazy_update_interval = lazy_update_interval
        self.commit_count = 0
        self._lazy_epoch = 0
        self._m_lazy_updates_sent = self._counter("replica_lazy_updates_sent")
        self._m_lazy_updates_applied = self._counter("replica_lazy_updates_applied")

    @property
    def lazy_updates_sent(self) -> int:
        return self._m_lazy_updates_sent.value

    @property
    def lazy_updates_applied(self) -> int:
        return self._m_lazy_updates_applied.value

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    @property
    def lazy_publisher_name(self) -> Optional[str]:
        """Without a sequencer, the primary leader publishes lazily."""
        return self.primary_view.leader

    @property
    def is_lazy_publisher(self) -> bool:
        return self.lazy_publisher_name == self.name

    def attached(self, network, host) -> None:
        super().attached(network, host)
        self.sim.schedule(self.lazy_update_interval, self._lazy_tick)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def on_group_message(self, group: str, sender: str, payload: Any) -> None:
        if isinstance(payload, Request):
            self._on_request(payload)
        elif isinstance(payload, LazyUpdate):
            self._on_lazy_update(payload)

    def _on_request(self, request: Request) -> None:
        pending = PendingRequest(request=request, arrived_at=self.now)
        if request.kind is RequestKind.UPDATE:
            if self.is_primary:
                # Per-client FIFO arrival order *is* the commit order.
                self.enqueue_ready(pending)
        else:
            if self.is_primary or self.is_secondary:
                self.enqueue_ready(pending)

    def execute(self, pending: PendingRequest) -> Any:
        value = super().execute(pending)
        if pending.request.kind is RequestKind.UPDATE:
            self.commit_count += 1
            self._m_updates_committed.inc()
        return value

    def committed_gsn(self) -> int:
        return self.commit_count

    # ------------------------------------------------------------------
    # Lazy propagation to the secondary group
    # ------------------------------------------------------------------
    def _lazy_tick(self) -> None:
        if self.network is None:
            return
        if self.up and self.is_primary and self.is_lazy_publisher:
            self._lazy_epoch += 1
            update = LazyUpdate(
                publisher=self.name,
                epoch=self._lazy_epoch,
                csn=self.commit_count,
                snapshot=self.app.snapshot(),
            )
            self.gmcast(self.groups.secondary, update, size_bytes=1024)
            self._m_lazy_updates_sent.inc()
        self.sim.schedule(self.lazy_update_interval, self._lazy_tick)

    def _on_lazy_update(self, update: LazyUpdate) -> None:
        if not self.is_secondary:
            return
        if update.csn > self.commit_count:
            self.app.restore(update.snapshot)
            self.commit_count = update.csn
            self._m_lazy_updates_applied.inc()

    def on_view_change(self, view: View, previous: Optional[View]) -> None:
        # Role designation is purely view-rank-based; nothing to hand over.
        pass
