"""Closed-loop SLA guardian: the adaptive consistency controller.

The paper tunes consistency statically — a fixed lazy update interval
``T_L`` and fixed per-client ``(a, d, P_c)``.  PR 9's
:meth:`~repro.obs.slo.SloEngine.signals` turned the telemetry layer into
a *sensor* (windowed error-budget burn per SLO); the degradation ladder
(DESIGN.md §11) and the open-loop Poisson tuner (``core/tuning.py``) are
*actuators*.  This module closes the loop (DESIGN.md §16), in the spirit
of OptCon's SLA-aware tuning (arXiv:1603.07938) and the stepwise
relax/rollback discipline of arXiv:1212.1046: start conservative,
measure, relax gradually, and roll back the moment the error budget
burns hot.

On a fixed control epoch the :class:`ConsistencyController` reads the
live timeline, derives per-SLO burn signals, and walks one scalar — the
**relax index** — up and down a knob ladder.  Index 0 is the declared
(conservative, costly) configuration; each step up lengthens ``T_L``
(fewer propagation messages), widens every registered class's staleness
threshold ``a`` (fewer deferred reads), and lowers its ``P_c(d)`` (less
read fan-out).  Safety comes from four guardrails:

* an explicit state machine ``CONSERVATIVE → MEASURE → RELAX`` with a
  hysteretic ``ROLLBACK`` state that reverts to the last *confirmed*
  index on burn regression and refuses to relax again for
  ``hold_epochs``;
* rate-limited actuation — at most one relax step per
  ``cooldown_epochs``; rollbacks are never rate-limited;
* hard min/max bounds — ``T_L`` is clamped into ``[t_l_min, t_l_max]``
  by the controller *and* re-clamped by the handler against the
  open-loop consistency bound, and every per-class adjustment is clamped
  inside :meth:`QosAdjustment.apply` against the class's declared
  staleness ceiling and probability floor, so a misbehaving controller
  can never violate a declared bound;
* every decision is recorded (:class:`ControllerDecision`) with the full
  signals snapshot, knob values, and transitions — auditable by the
  ``repro adaptive`` invariant checks and rendered by ``repro dash``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.qos import QoSSpec
from repro.obs.metrics import MetricsRegistry
from repro.sim.tracing import NULL_TRACE, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.slo import SloEngine
    from repro.obs.timeseries import TimeseriesRecorder

__all__ = [
    "CONSERVATIVE",
    "MEASURE",
    "RELAX",
    "ROLLBACK",
    "STATE_LEVELS",
    "ControllerConfig",
    "ClassBounds",
    "QosAdjustment",
    "ControllerDecision",
    "ConsistencyController",
    "t_l_at",
    "class_adjustment_at",
]

#: Guardrail states.  ``CONSERVATIVE`` holds the declared knobs during
#: warmup; ``MEASURE`` watches the burn signals at the current index;
#: ``RELAX`` marks the epoch an up-step actuated; ``ROLLBACK`` is the
#: hysteretic hold after a revert.
CONSERVATIVE, MEASURE, RELAX, ROLLBACK = (
    "conservative",
    "measure",
    "relax",
    "rollback",
)

#: Numeric encoding of the states (the ``controller_state`` gauge).
STATE_LEVELS = {CONSERVATIVE: 0, MEASURE: 1, RELAX: 2, ROLLBACK: 3}


@dataclass(frozen=True)
class ControllerConfig:
    """Shape of the closed-loop controller (DESIGN.md §16).

    ``epoch`` is the control period in simulated seconds; every epoch the
    controller re-reads the burn signals and re-actuates.  The epoch
    counts below gate the state machine: ``warmup_epochs`` before leaving
    CONSERVATIVE, ``healthy_epochs`` consecutive quiet epochs before a
    relax step, ``confirm_epochs`` quiet epochs at an index before it
    becomes the rollback target (*last good*), ``cooldown_epochs``
    between relax steps, and ``hold_epochs`` of refusing to relax after a
    rollback (the hysteresis that stops relax/rollback flapping).

    The knob ladder: at relax index ``i``, ``T_L`` is the base interval
    times ``t_l_step ** i`` clamped into ``[t_l_min, t_l_max]``; each
    registered class widens ``a`` by ``staleness_step × i`` (to its
    ceiling) and lowers ``P_c`` by ``probability_step × i`` (to its
    floor).

    ``dry_run`` observes, decides, and records without actuating — the
    bit-identity property test runs a dry controller against a
    controller-free build.
    """

    epoch: float = 0.5
    warmup_epochs: int = 2
    healthy_epochs: int = 2
    confirm_epochs: int = 3
    # Default cooldown exceeds confirm_epochs so a confirmation can land
    # between consecutive relax steps — otherwise last_good never
    # advances and every rollback falls all the way to index 0.
    cooldown_epochs: int = 4
    hold_epochs: int = 4
    max_relax_steps: int = 4
    # Healthy means every SLO is inside these thresholds; a burn rate of
    # 1.0 consumes exactly the allotted budget.
    relax_fast_burn: float = 1.0
    relax_slow_burn: float = 1.0
    min_budget: float = 0.25
    # Knob ladder shape.
    t_l_step: float = 2.0
    t_l_min: float = 0.05
    t_l_max: float = 10.0
    staleness_step: int = 4
    probability_step: float = 0.1
    # Third knob family: force the degradation ladder of registered
    # clients to this level while any SLO regresses (0 disables).
    regression_ladder_level: int = 1
    dry_run: bool = False

    def __post_init__(self) -> None:
        if self.epoch <= 0:
            raise ValueError(f"control epoch must be positive, got {self.epoch!r}")
        for name in (
            "warmup_epochs",
            "healthy_epochs",
            "confirm_epochs",
            "cooldown_epochs",
            "hold_epochs",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.max_relax_steps < 0:
            raise ValueError("max_relax_steps must be >= 0")
        if self.t_l_step < 1.0:
            raise ValueError("t_l_step must be >= 1 (relaxing lengthens T_L)")
        if not 0 < self.t_l_min <= self.t_l_max:
            raise ValueError(
                f"invalid T_L bounds [{self.t_l_min}, {self.t_l_max}]"
            )
        if self.staleness_step < 0 or self.probability_step < 0:
            raise ValueError("knob steps must be >= 0 (relaxing only loosens)")
        if self.regression_ladder_level < 0:
            raise ValueError("regression_ladder_level must be >= 0")


@dataclass(frozen=True)
class ClassBounds:
    """Hard per-class guardrails declared at registration time.

    ``staleness_ceiling`` is the widest ``a`` the class tolerates and
    ``probability_floor`` the lowest ``P_c`` — the controller cannot
    cross either, whatever its state machine does.  The optional steps
    override the config-wide ladder increments for this class.
    """

    staleness_ceiling: int
    probability_floor: float
    staleness_step: Optional[int] = None
    probability_step: Optional[float] = None

    def __post_init__(self) -> None:
        if self.staleness_ceiling < 0:
            raise ValueError("staleness_ceiling must be >= 0")
        if not 0.0 <= self.probability_floor <= 1.0:
            raise ValueError("probability_floor outside [0, 1]")
        if self.staleness_step is not None and self.staleness_step < 0:
            raise ValueError("staleness_step must be >= 0")
        if self.probability_step is not None and self.probability_step < 0:
            raise ValueError("probability_step must be >= 0")


@dataclass(frozen=True)
class QosAdjustment:
    """A clamped per-class knob setting the controller hands a client.

    Deltas are non-negative by construction — the adjustment can only
    *loosen* the declared QoS, and :meth:`apply` clamps the result
    against the ceiling/floor as the last line of defense: even an
    adjustment built with absurd deltas cannot push ``a`` past the
    ceiling or ``P_c`` under the floor.
    """

    widen_staleness: int = 0
    relax_probability: float = 0.0
    staleness_ceiling: Optional[int] = None
    probability_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.widen_staleness < 0:
            raise ValueError("widen_staleness must be >= 0")
        if self.relax_probability < 0.0:
            raise ValueError("relax_probability must be >= 0")
        if self.staleness_ceiling is not None and self.staleness_ceiling < 0:
            raise ValueError("staleness_ceiling must be >= 0")
        if not 0.0 <= self.probability_floor <= 1.0:
            raise ValueError("probability_floor outside [0, 1]")

    @property
    def identity(self) -> bool:
        return self.widen_staleness == 0 and self.relax_probability == 0.0

    def apply(self, qos: QoSSpec) -> QoSSpec:
        """The QoS a read is actually issued with under this adjustment."""
        if self.identity:
            return qos
        staleness = qos.staleness_threshold + self.widen_staleness
        if self.staleness_ceiling is not None:
            staleness = min(staleness, self.staleness_ceiling)
        staleness = max(0, staleness)
        floor = min(self.probability_floor, qos.min_probability)
        probability = max(qos.min_probability - self.relax_probability, floor)
        if (
            staleness == qos.staleness_threshold
            and probability == qos.min_probability
        ):
            return qos
        return QoSSpec(
            staleness_threshold=staleness,
            deadline=qos.deadline,
            min_probability=probability,
        )


def t_l_at(config: ControllerConfig, base: float, index: int) -> float:
    """The lazy update interval the knob ladder prescribes at ``index``."""
    raw = base * (config.t_l_step ** index)
    return min(config.t_l_max, max(config.t_l_min, raw))


def class_adjustment_at(
    config: ControllerConfig, bounds: ClassBounds, index: int
) -> QosAdjustment:
    """The per-class adjustment the knob ladder prescribes at ``index``."""
    staleness_step = (
        bounds.staleness_step
        if bounds.staleness_step is not None
        else config.staleness_step
    )
    probability_step = (
        bounds.probability_step
        if bounds.probability_step is not None
        else config.probability_step
    )
    return QosAdjustment(
        widen_staleness=staleness_step * index,
        relax_probability=probability_step * index,
        staleness_ceiling=bounds.staleness_ceiling,
        probability_floor=bounds.probability_floor,
    )


@dataclass
class ControllerDecision:
    """One audited control epoch: signals in, state + knobs out."""

    epoch: int
    time: float
    previous_state: str
    state: str
    relax_index: int
    last_good_index: int
    regression: bool
    healthy: bool
    rollback: bool
    t_l: Optional[float]
    knobs: Dict[str, Dict[str, float]]
    ladder_level: int
    actions: List[str] = field(default_factory=list)
    signals: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "time": self.time,
            "previous_state": self.previous_state,
            "state": self.state,
            "relax_index": self.relax_index,
            "last_good_index": self.last_good_index,
            "regression": self.regression,
            "healthy": self.healthy,
            "rollback": self.rollback,
            "t_l": self.t_l,
            "knobs": self.knobs,
            "ladder_level": self.ladder_level,
            "actions": list(self.actions),
            "signals": {k: dict(v) for k, v in self.signals.items()},
        }


@dataclass
class _ActuatedClass:
    clients: List[object]
    bounds: ClassBounds
    base_qos: QoSSpec


class ConsistencyController:
    """The epoch loop: sense burn, walk the knob ladder, stay in bounds.

    Wire-up order (see ``workloads/scenarios.py`` for the canonical
    pattern): construct with the sensors (engine + live recorder), call
    :meth:`register_service` for the ``T_L`` actuator,
    :meth:`register_class` per consistency class, optionally
    :meth:`register_ladder` per degradation-capable client, then
    :meth:`start`.  The epoch tick is a central, self-rescheduling sim
    event, so it survives any replica crash by construction; recovering
    primaries re-adopt the current interval through
    ``handler._rearm_controller()`` (the same pattern as the commit-gap
    watchdog), and every epoch re-actuates all *live* primaries
    idempotently as a second safety net.
    """

    def __init__(
        self,
        sim,
        engine: "SloEngine",
        recorder: "TimeseriesRecorder",
        config: Optional[ControllerConfig] = None,
        *,
        trace: Trace = NULL_TRACE,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "controller",
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.recorder = recorder
        self.config = config or ControllerConfig()
        self.trace = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.name = name

        self.state = CONSERVATIVE
        self.relax_index = 0
        self.last_good_index = 0
        self.decisions: List[ControllerDecision] = []
        self.epoch = 0
        self._healthy_streak = 0
        self._healthy_at_index = 0
        self._last_actuation_epoch = -(10**9)
        self._last_rollback_epoch = -(10**9)
        self._prev_budget: Dict[str, float] = {}
        self._tick_event = None

        # Actuator registries.
        self._t_l_targets: List[object] = []
        self._base_t_l: Optional[float] = None
        self._classes: Dict[str, _ActuatedClass] = {}
        self._ladder_clients: List[object] = []
        self._current_t_l: Optional[float] = None
        self._ladder_level = 0

        labels = {"controller": name}
        self._g_state = self.metrics.gauge("controller_state", **labels)
        self._g_index = self.metrics.gauge("controller_relax_index", **labels)
        self._g_t_l = self.metrics.gauge("controller_t_l_seconds", **labels)
        self._m_epochs = self.metrics.counter("controller_epochs", **labels)
        self._m_relaxes = self.metrics.counter("controller_relaxes", **labels)
        self._m_rollbacks = self.metrics.counter(
            "controller_rollbacks", **labels
        )

    # ------------------------------------------------------------------
    # Actuator registration
    # ------------------------------------------------------------------
    def register_service(self, service) -> None:
        """Adopt a service's primaries (sequencer included) as the T_L
        actuator, and hook their failover re-arm path back to us."""
        handlers: List[object] = []
        if service.sequencer is not None:
            handlers.append(service.sequencer)
        handlers.extend(service.primaries)
        self._t_l_targets = handlers
        self._base_t_l = service.config.lazy_update_interval
        if not self.config.dry_run:
            for handler in handlers:
                handler.controller = self

    def register_class(
        self,
        name: str,
        clients: Sequence[object],
        bounds: ClassBounds,
        base_qos: QoSSpec,
    ) -> None:
        """Register one consistency class (e.g. ``browse``) for per-class
        ``(a, P_c)`` actuation, with its hard guardrails."""
        if name in self._classes:
            raise ValueError(f"class {name!r} already registered")
        if bounds.staleness_ceiling < base_qos.staleness_threshold:
            raise ValueError(
                f"class {name!r}: staleness ceiling "
                f"{bounds.staleness_ceiling} is tighter than the declared "
                f"base threshold {base_qos.staleness_threshold}"
            )
        if bounds.probability_floor > base_qos.min_probability:
            raise ValueError(
                f"class {name!r}: probability floor "
                f"{bounds.probability_floor} exceeds the declared base "
                f"P_c {base_qos.min_probability}"
            )
        self._classes[name] = _ActuatedClass(
            clients=list(clients), bounds=bounds, base_qos=base_qos
        )

    def register_ladder(self, client) -> None:
        """Register a degradation-capable client for ladder actuation."""
        self._ladder_clients.append(client)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ConsistencyController":
        if self._tick_event is None:
            self._tick_event = self.sim.schedule(
                self.config.epoch, self._epoch_tick
            )
        return self

    def stop(self) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def current_interval(self) -> Optional[float]:
        """The T_L in force, for handler re-arm after failover/recovery."""
        return self._current_t_l

    @property
    def rollbacks(self) -> int:
        return self._m_rollbacks.value

    @property
    def relaxes(self) -> int:
        return self._m_relaxes.value

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def _read_signals(self) -> Dict[str, Dict[str, float]]:
        return self.engine.signals(self.recorder.timeline())

    def _regressing(self, signals: Dict[str, Dict[str, float]]) -> bool:
        """Burn regression: any SLO paging or *actively* burning budget.

        ``budget_remaining`` is cumulative over the whole timeline, so a
        single bad episode leaves it negative forever — that alone must
        not pin the controller in ROLLBACK for the rest of the run.  An
        exhausted budget only counts as regression while it is still
        falling (the burn is ongoing); once it stabilises the controller
        may return to MEASURE, and :meth:`_budget_ok` still forbids
        *exploring* past the last confirmed index.
        """
        regressing = False
        for name, s in signals.items():
            budget = s["budget_remaining"]
            prev = self._prev_budget.get(name)
            self._prev_budget[name] = budget
            if s["alerting"] >= 1.0:
                regressing = True
            elif budget < 0.0 and (prev is None or budget < prev - 1e-9):
                regressing = True
        return regressing

    def _is_healthy(self, signals: Dict[str, Dict[str, float]]) -> bool:
        """Quiet enough to consider relaxing: every SLO's *recent* burn is
        inside budget (no signals at all is *not* evidence of health).
        Lifetime budget is deliberately excluded here — it gates how far
        we may explore (see ``_budget_ok``), not whether we may return to
        a setting that already survived confirmation."""
        cfg = self.config
        if not signals:
            return False
        return all(
            s["alerting"] < 1.0
            and s["fast_burn"] <= cfg.relax_fast_burn
            and s["slow_burn"] <= cfg.relax_slow_burn
            for s in signals.values()
        )

    def _budget_ok(self, signals: Dict[str, Dict[str, float]]) -> bool:
        """Enough lifetime error budget left to *experiment*: relaxing
        past ``last_good_index`` is an experiment and is only permitted
        while every SLO retains at least ``min_budget`` of its budget.
        Re-relaxing up to a confirmed-good index is not an experiment and
        stays allowed on recent health alone."""
        cfg = self.config
        return all(
            s["budget_remaining"] >= cfg.min_budget for s in signals.values()
        )

    # ------------------------------------------------------------------
    # The control epoch
    # ------------------------------------------------------------------
    def _epoch_tick(self) -> None:
        self._tick_event = self.sim.schedule(self.config.epoch, self._epoch_tick)
        cfg = self.config
        self.epoch += 1
        self._m_epochs.inc()
        signals = self._read_signals()
        regression = self._regressing(signals)
        healthy = self._is_healthy(signals)
        budget_ok = self._budget_ok(signals)
        previous_state = self.state
        actions: List[str] = []
        rollback = False

        if self.state == CONSERVATIVE:
            if self.epoch >= cfg.warmup_epochs:
                self.state = MEASURE
                self._healthy_streak = 0
        elif regression:
            self._healthy_streak = 0
            if self.relax_index > 0:
                # Revert to the last index that survived confirmation;
                # never rate-limited — safety moves are immediate.
                target = min(self.last_good_index, self.relax_index - 1)
                actions.append(f"rollback:{self.relax_index}->{target}")
                self.relax_index = target
                # last_good_index is deliberately NOT lowered: the
                # confirmation was earned under calm conditions and a
                # transient disturbance does not erase it.  If the index
                # is genuinely bad in the new regime, re-relaxing to it
                # triggers another (rate-limited) rollback.
                self._healthy_at_index = 0
                self._last_rollback_epoch = self.epoch
                self._last_actuation_epoch = self.epoch
                self._m_rollbacks.inc()
                rollback = True
                self.state = ROLLBACK
            elif self.state != ROLLBACK:
                # Nothing left to revert: hold the conservative knobs and
                # let the ladder actuation below absorb the regression.
                self.state = MEASURE
        else:
            if self.state == ROLLBACK:
                if self.epoch - self._last_rollback_epoch >= cfg.hold_epochs:
                    self.state = MEASURE
            elif self.state == RELAX:
                self.state = MEASURE
            if healthy:
                self._healthy_streak += 1
                self._healthy_at_index += 1
                if (
                    self._healthy_at_index >= cfg.confirm_epochs
                    and self.relax_index > self.last_good_index
                ):
                    actions.append(f"confirm:{self.relax_index}")
                    self.last_good_index = self.relax_index
                if (
                    self.state == MEASURE
                    and self._healthy_streak >= cfg.healthy_epochs
                    and self.relax_index < cfg.max_relax_steps
                    and (budget_ok or self.relax_index < self.last_good_index)
                    and self.epoch - self._last_actuation_epoch
                    >= cfg.cooldown_epochs
                    and self.epoch - self._last_rollback_epoch
                    >= cfg.hold_epochs
                ):
                    actions.append(
                        f"relax:{self.relax_index}->{self.relax_index + 1}"
                    )
                    self.relax_index += 1
                    self._healthy_streak = 0
                    self._healthy_at_index = 0
                    self._last_actuation_epoch = self.epoch
                    self._m_relaxes.inc()
                    self.state = RELAX
            else:
                self._healthy_streak = 0

        knobs = self._actuate(actions, regression)
        decision = ControllerDecision(
            epoch=self.epoch,
            time=self.sim.now,
            previous_state=previous_state,
            state=self.state,
            relax_index=self.relax_index,
            last_good_index=self.last_good_index,
            regression=regression,
            healthy=healthy,
            rollback=rollback,
            t_l=self._current_t_l,
            knobs=knobs,
            ladder_level=self._ladder_level,
            actions=actions,
            signals=signals,
        )
        self.decisions.append(decision)
        self._g_state.set(STATE_LEVELS[self.state])
        self._g_index.set(self.relax_index)
        if self._current_t_l is not None:
            self._g_t_l.set(self._current_t_l)
        if self.trace.enabled and (
            actions or self.state != previous_state
        ):
            self.trace.emit(
                self.sim.now,
                "controller.decision",
                self.name,
                epoch=self.epoch,
                state=self.state,
                relax_index=self.relax_index,
                actions=list(actions),
                regression=regression,
            )

    def _actuate(
        self, actions: List[str], regression: bool
    ) -> Dict[str, Dict[str, float]]:
        """Push the knobs for the current index to every actuator.

        Runs every epoch, idempotently: a primary that missed an
        actuation while crashed converges within one epoch of rejoining
        even if its re-arm hook were lost.  Returns the absolute knob
        values per class for the decision record.
        """
        cfg = self.config
        # The emergency knob: hold registered ladders up while any SLO
        # regresses and through the post-rollback hold (hysteresis), so
        # the ladder does not flap with a flickering alert edge.
        regression_level = (
            cfg.regression_ladder_level
            if (regression or self.state == ROLLBACK)
            else 0
        )
        knobs: Dict[str, Dict[str, float]] = {}
        t_l: Optional[float] = None
        if self._base_t_l is not None:
            t_l = t_l_at(cfg, self._base_t_l, self.relax_index)
            if self._current_t_l is not None and t_l != self._current_t_l:
                actions.append(f"t_l:{self._current_t_l:.3f}->{t_l:.3f}")
        for name, entry in self._classes.items():
            adjustment = class_adjustment_at(cfg, entry.bounds, self.relax_index)
            applied = adjustment.apply(entry.base_qos)
            knobs[name] = {
                "staleness_threshold": float(applied.staleness_threshold),
                "min_probability": applied.min_probability,
            }
            if not cfg.dry_run:
                for client in entry.clients:
                    client.qos_actuation = (
                        None if adjustment.identity else adjustment
                    )
        if not cfg.dry_run:
            if t_l is not None:
                self._current_t_l = t_l
                for handler in self._t_l_targets:
                    if handler.up:
                        handler.set_controller_interval(t_l)
            if regression_level != self._ladder_level:
                actions.append(
                    f"ladder:{self._ladder_level}->{regression_level}"
                )
            self._ladder_level = regression_level
            for client in self._ladder_clients:
                client.force_degradation(regression_level)
        else:
            self._current_t_l = t_l
            self._ladder_level = regression_level
        return knobs
