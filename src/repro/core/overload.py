"""Overload protection: bounded queues, pressure, and graceful degradation.

The paper's whole premise is that clients trade consistency for
timeliness — but the base runtime only makes that trade at *selection*
time.  Under a traffic burst the replica processing queues grow without
bound, every queued request is served late, and the measured windows the
``P_c(d)`` predictions rest on describe a regime that no longer exists.
This module makes the trade at *run* time as well (DESIGN.md §11), in the
spirit of OptCon's SLA-aware tuning (arXiv:1603.07938) and the stepwise
latency-bounding of arXiv:1212.1046:

* :class:`OverloadConfig` — replica-side knobs: a queue capacity, a
  deadline-aware shed policy (drop requests that cannot possibly answer in
  time and say so with an explicit
  :class:`~repro.core.requests.OverloadReply`), and bounds/expiry for the
  deferred-read buffer;
* :class:`PressureMonitor` — an EWMA observer of queue depth and
  wait-vs-service ratio exposing a discrete, hysteretic pressure level;
* :class:`DegradationPolicy` — the client/gateway ladder: on overload
  evidence it steps consistency/fidelity *down* (widen the staleness
  threshold ``a``, redirect reads to lazier secondaries, lower ``P_c(d)``,
  finally shed the lowest-priority traffic via
  :class:`~repro.core.priority.PriorityMapper`) and steps back *up*
  hysteretically once pressure clears.  Every transition is recorded so
  degradation is auditable.

Everything here is **default-off**: a service built without an
``OverloadConfig`` behaves bit-identically to the pre-overload runtime
(property-tested in ``tests/core/test_overload.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.priority import PriorityMapper
from repro.core.qos import QoSSpec

#: Discrete pressure levels exported by :class:`PressureMonitor` and
#: mirrored by the degradation ladder.  Plain ints keep them trivially
#: comparable, mergeable, and JSON-able.
NOMINAL, ELEVATED, HIGH, CRITICAL = 0, 1, 2, 3

PRESSURE_NAMES = ("nominal", "elevated", "high", "critical")


def pressure_name(level: int) -> str:
    """Human-readable name of a pressure/degradation level."""
    return PRESSURE_NAMES[max(0, min(level, len(PRESSURE_NAMES) - 1))]


# ---------------------------------------------------------------------------
# Replica-side configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OverloadConfig:
    """Replica-side overload protection knobs.

    ``queue_capacity`` bounds the *ready* queue (requests whose ordering
    constraints are met, waiting for the single server); a read arriving
    at a full queue is shed.  ``shed_expired`` sheds reads whose deadline
    has already passed on arrival; ``shed_predicted`` additionally sheds
    reads whose predicted wait (queue depth × EWMA service time) exceeds
    the remaining deadline budget.  ``defer_capacity`` caps the
    deferred-read buffer and ``expire_deferred`` gives every buffered
    deferred read an expiry at the owning client's deadline, so a dead or
    partitioned lazy publisher bounces reads instead of leaking them.

    Updates are **never shed**: the sequential commit order admits no
    holes, so the update path is protected indirectly — by admission
    control and by the client ladder reducing read load.
    """

    queue_capacity: Optional[int] = 64
    shed_expired: bool = True
    shed_predicted: bool = True
    defer_capacity: Optional[int] = 256
    expire_deferred: bool = True
    min_retry_after: float = 0.05  # floor for the back-pressure hint
    # PressureMonitor shape.
    pressure_alpha: float = 0.2
    depth_thresholds: tuple[float, float, float] = (4.0, 8.0, 16.0)
    wait_ratio_thresholds: tuple[float, float, float] = (1.0, 2.0, 4.0)
    hysteresis: float = 0.7  # fraction of a threshold required to step down

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be >= 1 (or None), got {self.queue_capacity!r}"
            )
        if self.defer_capacity is not None and self.defer_capacity < 1:
            raise ValueError(
                f"defer capacity must be >= 1 (or None), got {self.defer_capacity!r}"
            )
        if self.min_retry_after < 0:
            raise ValueError("min_retry_after must be >= 0")
        if not 0.0 < self.pressure_alpha <= 1.0:
            raise ValueError(f"pressure_alpha {self.pressure_alpha!r} outside (0, 1]")
        if not 0.0 < self.hysteresis <= 1.0:
            raise ValueError(f"hysteresis {self.hysteresis!r} outside (0, 1]")
        for name in ("depth_thresholds", "wait_ratio_thresholds"):
            values = getattr(self, name)
            if len(values) != 3 or any(v <= 0 for v in values) or list(values) != sorted(values):
                raise ValueError(f"{name} must be three positive ascending values")

    @classmethod
    def disabled(cls) -> "OverloadConfig":
        """An inert config: monitoring only, no shedding, no expiry.

        Used by the default-off property test — a service carrying this
        config must behave bit-identically to one carrying ``None``.
        """
        return cls(
            queue_capacity=None,
            shed_expired=False,
            shed_predicted=False,
            defer_capacity=None,
            expire_deferred=False,
        )

    @property
    def inert(self) -> bool:
        """True when no knob can ever shed or expire a request."""
        return (
            self.queue_capacity is None
            and not self.shed_expired
            and not self.shed_predicted
            and self.defer_capacity is None
            and not self.expire_deferred
        )


# ---------------------------------------------------------------------------
# Pressure detection
# ---------------------------------------------------------------------------
class PressureMonitor:
    """EWMA-based overload detector for one replica.

    Observes every completed request: the queue depth left behind, the
    queuing delay ``t_q``, and the service time ``t_s``.  Two smoothed
    signals — queue depth and the wait/service ratio — are mapped to a
    discrete pressure level (0–3).  Rising pressure takes effect
    immediately; falling pressure must clear ``hysteresis`` × the lower
    threshold before the level steps down, so the exported level does not
    flap at a boundary.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        depth_thresholds: tuple[float, float, float] = (4.0, 8.0, 16.0),
        wait_ratio_thresholds: tuple[float, float, float] = (1.0, 2.0, 4.0),
        hysteresis: float = 0.7,
    ) -> None:
        self.alpha = alpha
        self.depth_thresholds = tuple(depth_thresholds)
        self.wait_ratio_thresholds = tuple(wait_ratio_thresholds)
        self.hysteresis = hysteresis
        self.depth_ewma = 0.0
        self.wait_ratio_ewma = 0.0
        self.service_time_ewma = 0.0
        self.level = NOMINAL
        self.samples = 0

    @classmethod
    def from_config(cls, config: OverloadConfig) -> "PressureMonitor":
        return cls(
            alpha=config.pressure_alpha,
            depth_thresholds=config.depth_thresholds,
            wait_ratio_thresholds=config.wait_ratio_thresholds,
            hysteresis=config.hysteresis,
        )

    def _ewma(self, current: float, sample: float) -> float:
        if self.samples == 0:
            return sample
        return current + self.alpha * (sample - current)

    @staticmethod
    def _bucket(value: float, thresholds: tuple[float, ...]) -> int:
        level = 0
        for bound in thresholds:
            if value >= bound:
                level += 1
        return level

    def observe(self, queue_depth: int, tq: float, ts: float) -> int:
        """Fold one completed request in; returns the (new) level."""
        ratio = tq / ts if ts > 0 else 0.0
        self.depth_ewma = self._ewma(self.depth_ewma, float(queue_depth))
        self.wait_ratio_ewma = self._ewma(self.wait_ratio_ewma, ratio)
        self.service_time_ewma = self._ewma(self.service_time_ewma, ts)
        self.samples += 1
        candidate = max(
            self._bucket(self.depth_ewma, self.depth_thresholds),
            self._bucket(self.wait_ratio_ewma, self.wait_ratio_thresholds),
        )
        if candidate > self.level:
            self.level = candidate
        elif candidate < self.level:
            # Hysteretic descent: require the signals to clear the band
            # below the current level by a margin before stepping down.
            step = self.level - 1
            depth_ok = self.depth_ewma < self._descend_bound(self.depth_thresholds, step)
            ratio_ok = self.wait_ratio_ewma < self._descend_bound(
                self.wait_ratio_thresholds, step
            )
            if depth_ok and ratio_ok:
                self.level = step
        return self.level

    def _descend_bound(self, thresholds: tuple[float, ...], step: int) -> float:
        # To *hold* level N the signal sits above thresholds[N-1]; to drop
        # to N-1 it must fall below hysteresis * thresholds[N-1].
        index = min(step, len(thresholds) - 1)
        return self.hysteresis * thresholds[index]

    def expected_wait(self, queue_depth: int) -> float:
        """Predicted queuing delay for a request joining the queue now."""
        return queue_depth * self.service_time_ewma


# ---------------------------------------------------------------------------
# Client-side degradation ladder
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DegradationConfig:
    """Shape of the consistency-degradation ladder (DESIGN.md §11).

    At ladder level ``L`` (0 = nominal):

    * the staleness threshold ``a`` widens by ``staleness_widen × L``
      versions (secondaries defer less, fewer reads block on the lazy
      publisher);
    * ``P_c(d)`` is lowered by ``probability_relief × L`` (the selection
      algorithm picks fewer replicas per read — less fan-out load);
    * at ``prefer_secondaries_level`` and above, reads are redirected
      from primaries to the (lazier) secondary pool when one exists;
    * at ``shed_level``, reads whose priority is at or below
      ``shed_priority`` are shed locally before any replica sees them.
    """

    staleness_widen: int = 5
    probability_relief: float = 0.1
    prefer_secondaries_level: int = 2
    shed_level: int = 3
    shed_priority: str = "bronze"
    max_level: int = 3
    step_cooldown: float = 0.25  # min seconds between downward steps
    recovery_window: float = 1.0  # quiet seconds required per upward step

    def __post_init__(self) -> None:
        if self.staleness_widen < 0:
            raise ValueError("staleness_widen must be >= 0")
        if not 0.0 <= self.probability_relief <= 1.0:
            raise ValueError("probability_relief outside [0, 1]")
        if self.max_level < 1:
            raise ValueError("max_level must be >= 1")
        if not 0 < self.shed_level <= self.max_level:
            raise ValueError("shed_level must be in [1, max_level]")
        if self.prefer_secondaries_level < 1:
            raise ValueError("prefer_secondaries_level must be >= 1")
        if self.step_cooldown < 0 or self.recovery_window <= 0:
            raise ValueError("invalid cooldown/recovery window")


@dataclass(frozen=True)
class DegradationStep:
    """One audited transition of the ladder."""

    time: float
    from_level: int
    to_level: int
    trigger: str  # "overload" | "pressure" | "recovered" | ...

    @property
    def down(self) -> bool:
        return self.to_level > self.from_level


class DegradationPolicy:
    """Hysteretic ladder a client gateway walks under overload evidence.

    Down-steps happen on :meth:`note_overload` (an
    :class:`~repro.core.requests.OverloadReply` arrived) or
    :meth:`note_pressure` (a replica reported pressure ≥ HIGH), rate-
    limited by ``step_cooldown``.  Up-steps happen on :meth:`note_ok`
    once ``recovery_window`` seconds pass with no trigger — one level at
    a time, so recovery is as gradual as degradation.

    The policy is pure bookkeeping: it owns no sockets and schedules no
    events.  The client consults :meth:`admit` before issuing each read.
    """

    def __init__(
        self,
        config: Optional[DegradationConfig] = None,
        priority_mapper: Optional[PriorityMapper] = None,
    ) -> None:
        self.config = config or DegradationConfig()
        self.priority_mapper = priority_mapper or PriorityMapper()
        self.shed_floor = self.priority_mapper.probability_for(
            self.config.shed_priority
        )
        self.level = NOMINAL
        self.steps: list[DegradationStep] = []
        self.reads_shed = 0
        self._last_trigger = float("-inf")
        self._last_change = float("-inf")

    # -- evidence -------------------------------------------------------
    def note_overload(self, now: float, trigger: str = "overload") -> Optional[DegradationStep]:
        """An OverloadReply (or equivalent) arrived; maybe step down."""
        self._last_trigger = now
        if self.level >= self.config.max_level:
            return None
        if now - self._last_change < self.config.step_cooldown:
            return None
        return self._move(now, self.level + 1, trigger)

    def note_pressure(self, now: float, level: int) -> Optional[DegradationStep]:
        """A replica reported its pressure level (piggybacked on sheds)."""
        if level >= HIGH:
            return self.note_overload(now, trigger="pressure")
        return None

    def note_ok(self, now: float) -> Optional[DegradationStep]:
        """Quiet evidence (a timely reply); maybe step back up one level."""
        if self.level == NOMINAL:
            return None
        window = self.config.recovery_window
        if now - self._last_trigger < window or now - self._last_change < window:
            return None
        return self._move(now, self.level - 1, "recovered")

    def force_level(
        self, now: float, level: int, trigger: str = "controller"
    ) -> Optional[DegradationStep]:
        """Pin the ladder at ``level`` (closed-loop actuation, DESIGN.md §16).

        Bypasses the evidence cooldowns — the controller already
        rate-limits itself — but stays clamped to ``[0, max_level]`` and
        records the transition like any other step.  Pinning a level
        counts as trigger evidence so the evidence-driven ``note_ok``
        path cannot immediately unwind a controller hold.
        """
        level = max(0, min(level, self.config.max_level))
        if level == self.level:
            return None
        if level > self.level:
            self._last_trigger = now
        return self._move(now, level, trigger)

    def _move(self, now: float, to_level: int, trigger: str) -> DegradationStep:
        step = DegradationStep(now, self.level, to_level, trigger)
        self.level = to_level
        self._last_change = now
        self.steps.append(step)
        return step

    # -- request-time decisions ----------------------------------------
    def admit(self, qos: QoSSpec, priority: Optional[str] = None) -> Optional[QoSSpec]:
        """The QoS to issue a read with at the current level.

        Returns ``None`` when the read should be shed locally (ladder at
        ``shed_level`` and the request's priority — named, or inferred
        from its ``P_c(d)`` against the mapper's levels — is at or below
        ``shed_priority``).  Otherwise returns the (possibly relaxed)
        spec: staleness widened, ``P_c(d)`` lowered, deadline untouched.
        """
        if self.level >= self.config.shed_level and self._sheddable(qos, priority):
            self.reads_shed += 1
            return None
        if self.level == NOMINAL:
            return qos
        relief = self.config.probability_relief * self.level
        return QoSSpec(
            staleness_threshold=qos.staleness_threshold
            + self.config.staleness_widen * self.level,
            deadline=qos.deadline,
            min_probability=max(0.0, qos.min_probability - relief),
        )

    def _sheddable(self, qos: QoSSpec, priority: Optional[str]) -> bool:
        if priority is not None:
            return self.priority_mapper.probability_for(priority) <= self.shed_floor
        return qos.min_probability <= self.shed_floor

    @property
    def prefer_secondaries(self) -> bool:
        return self.level >= self.config.prefer_secondaries_level

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict[str, int]:
        down = sum(1 for s in self.steps if s.down)
        return {
            "degradation_steps_down": down,
            "degradation_steps_up": len(self.steps) - down,
            "degradation_reads_shed": self.reads_shed,
        }
