"""Server-side gateway handler base: execution, measurement, publishing.

The consistency protocols (:mod:`repro.core.handlers`) decide *when* a
request may execute; this base class owns everything else a server-side
gateway handler does (§5.4):

* a single-server processing queue per replica — requests execute one at a
  time with a sampled service time (scaled by the host's speed factor),
  which is what produces the queuing delay ``t_q`` the middleware measures;
* per-request timing: ``t_q`` (arrival → service start, minus any deferred
  wait), ``t_s`` (service), ``t_b`` (deferred-read buffering);
* replying to the client with the piggybacked ``t1 = t_s + t_q + t_b``;
* publishing a :class:`~repro.core.requests.PerfBroadcast` to every client
  after each completed read ("Each server handler also publishes the newly
  measured values ... whenever it completes servicing a read request").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.overload import OverloadConfig, PressureMonitor
from repro.core.requests import (
    OverloadReply,
    PerfBroadcast,
    Reply,
    Request,
    RequestKind,
    StalenessInfo,
)
from repro.core.state import ReplicatedObject
from repro.groups.group import GroupEndpoint
from repro.groups.membership import View
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.spans import emit_span, span_root
from repro.sim.rng import Distribution, RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace


@dataclass(frozen=True)
class ServiceGroups:
    """The three group names of one replicated service (Figure 1)."""

    service: str

    @property
    def primary(self) -> str:
        return f"{self.service}.primary"

    @property
    def secondary(self) -> str:
        return f"{self.service}.secondary"

    @property
    def qos(self) -> str:
        return f"{self.service}.qos"


@dataclass
class PendingRequest:
    """A request somewhere between arrival and completion on this replica."""

    request: Request
    arrived_at: float
    gsn: Optional[int] = None
    defer_started_at: Optional[float] = None
    tb: float = 0.0
    started_at: Optional[float] = None
    # Staleness attribution (DESIGN.md §15).  A deferred secondary read's
    # wait splits into lazy-publisher lag + network delay; a behind
    # primary's stale wait is commit-queue drain time.  The components sum
    # to the read's observed staleness wait (``tb + stale_wait``).
    stale_wait_started_at: Optional[float] = None
    stale_wait: float = 0.0
    lazy_wait: float = 0.0
    net_wait: float = 0.0

    @property
    def deferred(self) -> bool:
        return self.tb > 0.0 or self.defer_started_at is not None


class ReplicaHandlerBase(GroupEndpoint):
    """Common machinery for all server-side consistency handlers."""

    def __init__(
        self,
        name: str,
        groups: ServiceGroups,
        app: ReplicatedObject,
        rng: RngRegistry,
        read_service_time: Distribution,
        update_service_time: Optional[Distribution] = None,
        trace: Trace = NULL_TRACE,
        publish_performance: bool = True,
        heartbeat_interval: float = 0.25,
        rto: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        super().__init__(name, heartbeat_interval=heartbeat_interval, rto=rto)
        self.groups = groups
        self.app = app
        self.rng = rng
        self.read_service_time = read_service_time
        self.update_service_time = update_service_time or read_service_time
        self.trace = trace
        self.publish_performance = publish_performance
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.overload = overload
        self.pressure: Optional[PressureMonitor] = (
            PressureMonitor.from_config(overload) if overload is not None else None
        )
        self.queue_depth_peak = 0
        self._ready: deque[PendingRequest] = deque()
        self._busy = False
        self._incarnation = 0
        self._m_reads_served = self._counter("replica_reads_served")
        self._m_updates_committed = self._counter("replica_updates_committed")
        self._m_deferred_reads_served = self._counter(
            "replica_deferred_reads_served"
        )
        self._h_service_time = self.metrics.histogram(
            "replica_service_time_seconds", replica=name
        )
        self._h_stale_wait = self.metrics.histogram(
            "replica_staleness_wait_seconds", replica=name
        )
        self._m_stale_components = {
            component: self.metrics.counter(
                "replica_staleness_wait_component_seconds",
                component=component,
                replica=name,
            )
            for component in ("lazy_publisher", "queue", "network")
        }
        self.busy_time = 0.0  # accumulated service time (utilization)

    def _counter(self, name: str) -> Counter:
        """A registry counter labelled with this replica's name (handlers
        use this for their protocol-specific counters)."""
        return self.metrics.counter(name, replica=self.name)

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def reads_served(self) -> int:
        return self._m_reads_served.value

    @property
    def updates_committed(self) -> int:
        return self._m_updates_committed.value

    @property
    def deferred_reads_served(self) -> int:
        return self._m_deferred_reads_served.value

    # ------------------------------------------------------------------
    # Identity and roles (derived from views)
    # ------------------------------------------------------------------
    @property
    def primary_view(self) -> View:
        return self.view_of(self.groups.primary)

    @property
    def secondary_view(self) -> View:
        return self.view_of(self.groups.secondary)

    @property
    def qos_view(self) -> View:
        return self.view_of(self.groups.qos)

    @property
    def is_primary(self) -> bool:
        return self.name in self.primary_view

    @property
    def is_secondary(self) -> bool:
        return self.name in self.secondary_view

    @property
    def sequencer_name(self) -> Optional[str]:
        """The sequencer is the leader of the primary group (§4.1)."""
        return self.primary_view.leader

    @property
    def is_sequencer(self) -> bool:
        return self.sequencer_name == self.name

    def replica_names(self) -> set[str]:
        return set(self.primary_view.members) | set(self.secondary_view.members)

    def client_names(self) -> list[str]:
        """QoS-group members that are not replicas (i.e. the clients)."""
        replicas = self.replica_names()
        return [m for m in self.qos_view.members if m not in replicas]

    # ------------------------------------------------------------------
    # Processing queue
    # ------------------------------------------------------------------
    def enqueue_ready(self, pending: PendingRequest) -> None:
        """Hand a request whose ordering constraints are met to the server.

        With an :class:`OverloadConfig`, reads may be *shed* here instead:
        bounded queue full, deadline already passed, or predicted wait
        exceeding the remaining budget.  Updates are never shed — the
        sequential commit order admits no holes (DESIGN.md §11).
        """
        if self.overload is not None and pending.request.kind is RequestKind.READ:
            reason = self._shed_reason(pending)
            if reason is not None:
                self._shed(pending, reason)
                return
        self._ready.append(pending)
        if self.queue_depth > self.queue_depth_peak:
            self.queue_depth_peak = self.queue_depth
        self._maybe_start()

    def _shed_reason(self, pending: PendingRequest) -> Optional[str]:
        """Why this read should bounce right now, or None to admit it."""
        config = self.overload
        assert config is not None
        qos = pending.request.qos
        remaining = None
        if qos is not None:
            remaining = pending.request.sent_at + qos.deadline - self.now
        if config.shed_expired and remaining is not None and remaining <= 0.0:
            return "deadline-passed"
        if (
            config.queue_capacity is not None
            and len(self._ready) >= config.queue_capacity
        ):
            return "queue-full"
        if (
            config.shed_predicted
            and remaining is not None
            and self.pressure is not None
            and self.pressure.samples > 0
            and self.pressure.expected_wait(self.queue_depth) > remaining
        ):
            return "predicted-late"
        return None

    def _shed(self, pending: PendingRequest, reason: str) -> None:
        """Bounce a read with an explicit :class:`OverloadReply`.

        Also used without an :class:`OverloadConfig` by the recovery-path
        deferred-read cleanup (the silent-drop bugfix): every dropped read
        gets an explicit failure reply so client accounting stays honest.
        """
        config = self.overload
        expected = (
            self.pressure.expected_wait(max(1, self.queue_depth))
            if self.pressure is not None
            else 0.0
        )
        min_after = config.min_retry_after if config is not None else 0.05
        retry_after = max(min_after, 0.5 * expected)
        level = self.pressure.level if self.pressure is not None else 0
        reply = OverloadReply(
            request_id=pending.request.request_id,
            replica=self.name,
            reason=reason,
            retry_after=retry_after,
            queue_depth=self.queue_depth,
            pressure=level,
        )
        self.gsend(self.groups.qos, pending.request.client, reply)
        self._counter("replica_reads_shed").inc()
        self.metrics.counter(
            "replica_reads_shed_by_reason", replica=self.name, reason=reason
        ).inc()
        self.trace.emit(
            self.now,
            "replica.shed",
            self.name,
            request_id=pending.request.request_id,
            reason=reason,
            retry_after=retry_after,
            queue_depth=self.queue_depth,
            pressure=level,
        )
        if self.trace.enabled:
            rid = pending.request.request_id
            emit_span(
                self.trace, self.now, self.name,
                f"{span_root(rid)}/shed/{self.name}", "shed",
                reason=reason, retry_after=retry_after,
                queue_depth=self.queue_depth, pressure=level,
            )

    def flush_pending(self) -> None:
        """Drop every queued and in-flight request (crash recovery).

        Bumping the service incarnation invalidates completion events that
        were scheduled before the flush: without it, a request in service
        at crash time would complete *after* recovery and commit stale work
        against freshly transferred state.
        """
        self._ready.clear()
        self._busy = False
        self._incarnation += 1

    @property
    def queue_depth(self) -> int:
        return len(self._ready) + (1 if self._busy else 0)

    def _maybe_start(self) -> None:
        if self._busy or not self._ready or not self.up:
            return
        pending = self._ready.popleft()
        self._busy = True
        pending.started_at = self.now
        model = (
            self.read_service_time
            if pending.request.kind is RequestKind.READ
            else self.update_service_time
        )
        duration = model.sample(self.rng.stream(f"service.{self.name}"))
        if self.host is not None:
            duration = self.host.scale(duration)
        self.sim.schedule(duration, self._complete, pending, duration, self._incarnation)

    def _complete(self, pending: PendingRequest, ts: float, incarnation: int) -> None:
        if incarnation != self._incarnation:
            # The queue was flushed (crash recovery) after this request
            # entered service; its work belongs to a dead incarnation.
            return
        self._busy = False
        if not self.up:
            # The replica crashed while "serving"; the work is lost.
            return
        self.busy_time += ts
        assert pending.started_at is not None
        tq = max(0.0, (pending.started_at - pending.arrived_at) - pending.tb)
        if self.pressure is not None:
            level = self.pressure.observe(len(self._ready), tq, ts)
            self.metrics.gauge("replica_pressure_level", replica=self.name).set(level)
            self.metrics.gauge("replica_queue_depth", replica=self.name).set(
                len(self._ready)
            )
            self.metrics.gauge(
                "replica_queue_depth_peak", replica=self.name
            ).set(self.queue_depth_peak)
        value = self.execute(pending)
        t1 = ts + tq + pending.tb
        reply = Reply(
            request_id=pending.request.request_id,
            replica=self.name,
            kind=pending.request.kind,
            value=value,
            t1=t1,
            gsn=self.committed_gsn(),
            deferred=pending.deferred,
            context=self.reply_context(),
        )
        # Replies travel over the reliable QoS-group channel to the client.
        self.gsend(self.groups.qos, pending.request.client, reply)
        self._h_service_time.observe(ts)
        if pending.request.kind is RequestKind.READ:
            self._m_reads_served.inc()
            if pending.deferred:
                self._m_deferred_reads_served.inc()
            # Staleness attribution: observed wait and its decomposition.
            # The components are computed from the same simulation
            # timestamps as the wait itself, so they sum to it exactly
            # (up to float associativity) on every read — including the
            # zero vector for immediately-fresh reads.
            observed_wait = pending.tb + pending.stale_wait
            self._h_stale_wait.observe(observed_wait)
            if pending.lazy_wait:
                self._m_stale_components["lazy_publisher"].inc(
                    pending.lazy_wait
                )
            if pending.stale_wait:
                self._m_stale_components["queue"].inc(pending.stale_wait)
            if pending.net_wait:
                self._m_stale_components["network"].inc(pending.net_wait)
            if self.trace.enabled:
                self.trace.emit(
                    self.now,
                    "replica.attribution",
                    self.name,
                    request_id=pending.request.request_id,
                    observed=observed_wait,
                    lazy_publisher=pending.lazy_wait,
                    queue=pending.stale_wait,
                    network=pending.net_wait,
                    deferred=pending.deferred,
                )
            if self.publish_performance:
                self._publish_performance(ts, tq, pending)
        if self.trace.enabled:
            # Serve span: stitched under the dispatch edge that carried the
            # request here by obs.spans.build_span_trees (parent=None).
            rid = pending.request.request_id
            emit_span(
                self.trace, self.now, self.name,
                f"{span_root(rid)}/s/{self.name}", "serve",
                ts=ts, tq=tq, tb=pending.tb, gsn=reply.gsn,
                staleness=self.staleness(), deferred=pending.deferred,
                kind=pending.request.kind.value,
            )
        self.trace.emit(
            self.now,
            "replica.complete",
            self.name,
            request_id=pending.request.request_id,
            kind=pending.request.kind.value,
            ts=ts,
            tq=tq,
            tb=pending.tb,
        )
        self._maybe_start()
        self.after_complete(pending)

    # ------------------------------------------------------------------
    # Performance publishing (§5.4)
    # ------------------------------------------------------------------
    def _publish_performance(self, ts: float, tq: float, pending: PendingRequest) -> None:
        broadcast = PerfBroadcast(
            replica=self.name,
            ts=ts,
            tq=tq,
            tb=pending.tb if pending.deferred else None,
            staleness=self.staleness_info(),
        )
        # Advisory data: plain (unreliable) multicast is fine, as with UDP
        # publishing in the original system; a lost broadcast just means a
        # slightly staler window at one client.
        self.multicast(self.client_names(), broadcast, size_bytes=128)

    # ------------------------------------------------------------------
    # Hooks for the consistency protocols
    # ------------------------------------------------------------------
    def execute(self, pending: PendingRequest) -> Any:
        """Run the operation against the application state."""
        return self.app.invoke(pending.request.method, pending.request.args)

    def committed_gsn(self) -> int:
        """The version stamp to attach to replies.  Protocols override."""
        return 0

    def staleness(self) -> int:
        """Missed-update count annotated on serve spans.  Protocols
        override (the sequential handler reports ``my_gsn - my_csn``)."""
        return 0

    def staleness_info(self) -> Optional[StalenessInfo]:
        """Extra lazy-publisher fields (§5.4.1); None for other replicas."""
        return None

    def reply_context(self) -> Any:
        """Protocol piggyback on replies (the causal handler's clock)."""
        return None

    def after_complete(self, pending: PendingRequest) -> None:
        """Post-completion hook (e.g. CSN advancement drains buffers)."""
