"""Replica selection: Algorithm 1 and the strategy interface.

The *state-based replica selection algorithm* (Algorithm 1, §5.3) picks no
more replicas than needed for the predicted probability that at least one
selected replica responds by the deadline to reach the client's
``P_c(d)`` — while tolerating the crash of the selected member most likely
to make the deadline, and while rotating load away from recently used
replicas (hot-spot avoidance via decreasing-``ert`` visiting order).

The same :class:`SelectionStrategy` interface also hosts the baseline
policies in :mod:`repro.baselines.strategies`, so experiments can swap the
paper's algorithm against naive alternatives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.qos import QoSSpec


@dataclass(frozen=True)
class ReplicaView:
    """The per-replica tuple ``V = <i, F^I_Ri(d), F^D_Ri(d), ert_i>``.

    ``delayed_cdf`` is meaningful only for secondary replicas (a primary's
    state is always current, §5.1.1).
    """

    name: str
    is_primary: bool
    immediate_cdf: float
    delayed_cdf: float
    ert: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.immediate_cdf <= 1.0:
            raise ValueError(f"immediate cdf {self.immediate_cdf!r} outside [0, 1]")
        if not 0.0 <= self.delayed_cdf <= 1.0:
            raise ValueError(f"delayed cdf {self.delayed_cdf!r} outside [0, 1]")


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a selection: the chosen replicas (sequencer excluded —
    the client handler appends it) plus the model's prediction."""

    replicas: tuple[str, ...]
    predicted_probability: float
    satisfied: bool

    def __len__(self) -> int:
        return len(self.replicas)


class SelectionStrategy:
    """Interface: map (candidates, QoS, staleness factor) to a replica set."""

    name = "abstract"

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        raise NotImplementedError


class _PkAccumulator:
    """Incremental evaluation of ``P_K(d)`` (Equations 1–3).

    ``primCDF`` accumulates ``prod (1 - F^I)`` over included primaries;
    ``secImmedCDF``/``secDelayedCDF`` accumulate the corresponding products
    over included secondaries; the group staleness factor mixes them
    (Eq. 3) because one lazy multicast updates the whole secondary group.

    ``correlated_deferral`` replaces the deferred-term product with
    ``min_j (1 − F^D_j)``: stale secondaries all answer after the *same*
    lazy update, so their deferred response times are strongly correlated
    and redundancy among them adds almost nothing.  The paper's Eq. 3 uses
    the independent product (fine in its evaluation regime); see DESIGN.md
    §5a for when the correlated variant matters.
    """

    def __init__(self, stale_factor: float, correlated_deferral: bool = False) -> None:
        if not 0.0 <= stale_factor <= 1.0:
            raise ValueError(f"stale factor {stale_factor!r} outside [0, 1]")
        self.stale_factor = stale_factor
        self.correlated_deferral = correlated_deferral
        self.prim_cdf = 1.0
        self.sec_immed_cdf = 1.0
        self.sec_delayed_cdf = 1.0

    def include(self, replica: ReplicaView) -> None:
        if replica.is_primary:
            self.prim_cdf *= 1.0 - replica.immediate_cdf
        else:
            self.sec_immed_cdf *= 1.0 - replica.immediate_cdf
            if self.correlated_deferral:
                self.sec_delayed_cdf = min(
                    self.sec_delayed_cdf, 1.0 - replica.delayed_cdf
                )
            else:
                self.sec_delayed_cdf *= 1.0 - replica.delayed_cdf

    def probability(self) -> float:
        sec_cdf = (
            self.sec_immed_cdf * self.stale_factor
            + self.sec_delayed_cdf * (1.0 - self.stale_factor)
        )
        return 1.0 - self.prim_cdf * sec_cdf


def sort_candidates(candidates: Sequence[ReplicaView]) -> list[ReplicaView]:
    """Line 2 of Algorithm 1: decreasing ``ert``; ties by decreasing CDF.

    A final name tie-break keeps runs reproducible.
    """
    return sorted(
        candidates,
        key=lambda r: (
            -r.ert if not math.isinf(r.ert) else -math.inf,
            -r.immediate_cdf,
            r.name,
        ),
    )


def set_success_probability(
    candidates: Sequence[ReplicaView],
    selected: Sequence[str],
    stale_factor: float,
    correlated_deferral: bool = False,
) -> float:
    """P(at least one member of ``selected`` meets the deadline), Eq. 1-3.

    Unlike :attr:`SelectionResult.predicted_probability` — which excludes
    the best-CDF member to model a single failure, making Algorithm 1's
    stopping rule deliberately conservative — this folds in *every* selected
    replica.  It is the forecast that should match observed outcomes when
    predictions are honest, so the calibration tracker scores this value,
    not the fault-tolerant one.
    """
    chosen = set(selected)
    acc = _PkAccumulator(stale_factor, correlated_deferral)
    for view in candidates:
        if view.name in chosen:
            acc.include(view)
    return acc.probability()


class StateBasedSelection(SelectionStrategy):
    """Algorithm 1: state-based replica selection.

    ``hot_spot_avoidance`` controls the line-2 visiting order: True (the
    paper's algorithm) visits replicas in decreasing ``ert``; False visits
    in decreasing CDF order only, which is the natural greedy alternative
    — and, as the hot-spot validation shows, concentrates load on
    whichever replicas currently look fastest ("hot spots", §5.3).

    ``correlated_deferral`` switches Eq. 3's deferred term from the
    paper's independent product to the correlation-aware minimum (see
    :class:`_PkAccumulator` and DESIGN.md §5a).
    """

    name = "state-based"

    def __init__(
        self,
        hot_spot_avoidance: bool = True,
        correlated_deferral: bool = False,
    ) -> None:
        self.hot_spot_avoidance = hot_spot_avoidance
        self.correlated_deferral = correlated_deferral
        if not hot_spot_avoidance:
            self.name = "state-based-no-ert"
        elif correlated_deferral:
            self.name = "state-based-correlated"

    def select(
        self,
        candidates: Sequence[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> SelectionResult:
        if not candidates:
            return SelectionResult((), 0.0, satisfied=qos.min_probability == 0.0)
        if self.hot_spot_avoidance:
            ordered = sort_candidates(candidates)
        else:
            ordered = sorted(
                candidates, key=lambda r: (-r.immediate_cdf, r.name)
            )
        acc = _PkAccumulator(stale_factor, self.correlated_deferral)
        target = qos.min_probability

        # Lines 3: seed K with the first candidate, which also starts as
        # maxCDFReplica — the member whose failure the test simulates by
        # excluding its distribution from the product.
        selected: list[ReplicaView] = [ordered[0]]
        max_cdf_replica = ordered[0]

        for replica in ordered[1:]:
            selected.append(replica)
            # Lines 6-11: always keep the best immediate CDF excluded;
            # fold the previous best (or this replica) into the products.
            if replica.immediate_cdf > max_cdf_replica.immediate_cdf:
                acc.include(max_cdf_replica)
                max_cdf_replica = replica
            else:
                acc.include(replica)
            if acc.probability() >= target:
                # Line 13: an acceptable set (sequencer appended upstream).
                return SelectionResult(
                    tuple(r.name for r in selected),
                    acc.probability(),
                    satisfied=True,
                )
        # Line 16: not satisfiable — return every replica.
        return SelectionResult(
            tuple(r.name for r in selected),
            acc.probability(),
            satisfied=acc.probability() >= target,
        )
