"""The request model and every protocol wire payload.

§2: "a client application has to explicitly specify all the read-only
methods it invokes on an object by their names.  If an operation is not
specified as read-only, then our middleware considers it to be an update
operation."  :class:`ReadOnlyRegistry` implements exactly that contract.

The remaining dataclasses are the payloads exchanged by the client-side and
server-side gateway handlers: requests/replies, GSN assignments from the
sequencer, lazy state updates, performance broadcasts (§5.4), and the
sequencer-failover messages (§4.1 notes failure handling; details were
omitted from the paper, ours are documented in DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.core.qos import QoSSpec

_REQUEST_IDS = itertools.count(1)


def next_request_id() -> int:
    """Allocate a process-wide unique request id."""
    return next(_REQUEST_IDS)


class RequestKind(Enum):
    """Read-only vs. state-modifying invocations (§2's request model)."""

    READ = "read"
    UPDATE = "update"


class ReadOnlyRegistry:
    """The set of method names a client has declared read-only (§2)."""

    def __init__(self, read_only_methods: Optional[set[str]] = None) -> None:
        self._read_only = set(read_only_methods or ())

    def declare(self, method: str) -> None:
        if not method:
            raise ValueError("method name must be non-empty")
        self._read_only.add(method)

    def kind_of(self, method: str) -> RequestKind:
        """READ iff the method was declared read-only; UPDATE otherwise."""
        if method in self._read_only:
            return RequestKind.READ
        return RequestKind.UPDATE

    def read_only_methods(self) -> set[str]:
        return set(self._read_only)


# ---------------------------------------------------------------------------
# Client <-> replica payloads
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Request:
    """A client operation as transmitted to the selected replicas."""

    request_id: int
    client: str
    method: str
    args: tuple
    kind: RequestKind
    qos: Optional[QoSSpec]  # present for reads; None for updates
    sent_at: float
    # Protocol-specific piggyback (e.g. the causal handler's dependency
    # vector); None for the sequential and FIFO handlers.
    context: Any = None

    def __post_init__(self) -> None:
        if self.kind is RequestKind.READ and self.qos is None:
            raise ValueError("read requests must carry a QoS specification")

    @property
    def staleness_threshold(self) -> int:
        if self.qos is None:
            raise ValueError("update requests have no staleness threshold")
        return self.qos.staleness_threshold


@dataclass(frozen=True, slots=True)
class Reply:
    """A replica's response.

    ``t1`` is the piggybacked ``t_s + t_q + t_b`` the client uses to derive
    the two-way gateway delay ``t_g = t_p - t_m - t_1`` (§5.4).  ``gsn`` is
    the replica's commit sequence number when it served the request — the
    version of the response, used to verify staleness bounds in tests.
    """

    request_id: int
    replica: str
    kind: RequestKind
    value: Any
    t1: float
    gsn: int
    deferred: bool = False
    # Protocol-specific piggyback (the causal handler returns the
    # replica's committed vector clock so the client's next update can
    # depend on everything this response reflected).
    context: Any = None


# ---------------------------------------------------------------------------
# Sequencer payloads (§4.1)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class OverloadReply:
    """An explicit bounce instead of a late (or never) response.

    Sent by a replica that *sheds* a read — bounded queue full, deadline
    already passed, predicted wait exceeding the remaining budget, or a
    deferred read expiring/being dropped during recovery — so the client
    learns immediately that this replica will not answer, instead of
    riding out a timing failure.  ``retry_after`` is the replica's own
    back-pressure hint (seconds); the client must not re-dispatch to the
    same replica before it elapses.  ``queue_depth`` and ``pressure``
    feed the client-side degradation ladder (DESIGN.md §11).
    """

    request_id: int
    replica: str
    reason: str  # "queue-full" | "deadline-passed" | "predicted-late"
    #            | "defer-full" | "defer-expired" | "defer-dropped-recovery"
    retry_after: float
    queue_depth: int
    pressure: int = 0  # the replica's discrete pressure level at shed time


@dataclass(frozen=True, slots=True)
class GsnAssign:
    """GSN assignment broadcast by the sequencer.

    For an update the sequencer advances the GSN and ``advances`` is True;
    for a read it broadcasts the *current* GSN without advancing.
    """

    request_id: int
    gsn: int
    advances: bool


@dataclass(frozen=True, slots=True)
class GsnQuery:
    """A replica re-requests the GSN for a buffered read.

    Not in the paper (failure handling was omitted); used when the
    sequencer crashed after receiving a read but before broadcasting its
    GSN, so buffered reads do not hang forever.
    """

    request_id: int
    replica: str


# ---------------------------------------------------------------------------
# Lazy update propagation (§3, §4.1.2)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LazyUpdate:
    """State snapshot the lazy publisher multicasts to the secondary group.

    ``published_at`` is the publisher's send timestamp; secondaries use it
    to split a deferred read's wait into lazy-publisher lag (time until
    the publisher sent) and network delay (time in flight) — the staleness
    attribution of DESIGN.md §15.
    """

    publisher: str
    epoch: int  # publisher-local counter of lazy propagations
    csn: int  # publisher's commit sequence number at snapshot time
    snapshot: Any
    published_at: Optional[float] = None


@dataclass(frozen=True, slots=True)
class PublisherSuspicion:
    """A secondary's report that the lazy publisher has gone gray.

    Secondaries run a φ-accrual detector over lazy-update inter-arrival
    times (DESIGN.md §14); when φ crosses the suspect threshold the
    secondary multicasts this to the primary group, which deterministically
    designates the next ranked serving primary as publisher.  Not in the
    paper — its publisher is fixed by view rank and only a crash (view
    change) moves the role, so an alive-but-slow publisher would starve
    the secondary tier indefinitely.
    """

    suspect: str
    reporter: str


# ---------------------------------------------------------------------------
# Online performance monitoring (§5.4)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class StalenessInfo:
    """The lazy publisher's extra broadcast fields (§5.4.1).

    ``n_u`` updates arrived in the ``t_u`` seconds since the publisher's
    last performance broadcast; ``n_l`` updates arrived in the ``t_l``
    seconds since its last lazy propagation.  ``lazy_interval`` is the
    ``T_L`` currently in effect — normally the configured constant, but
    the adaptive controller (:mod:`repro.core.tuning`) retunes it, and
    clients need the live value for the ``t_l`` modulo of §5.4.1.
    """

    n_u: int
    t_u: float
    n_l: int
    t_l: float
    lazy_interval: Optional[float] = None


@dataclass(frozen=True, slots=True)
class PerfBroadcast:
    """Measurements a replica publishes to all clients after a read.

    ``tb`` is None unless the read was deferred.  ``staleness`` is present
    only on broadcasts from the lazy publisher.
    """

    replica: str
    ts: float
    tq: float
    tb: Optional[float]
    staleness: Optional[StalenessInfo] = None


# ---------------------------------------------------------------------------
# Sequencer failover (our completion of §4.1's omitted failure handling)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SequencerSyncRequest:
    """New sequencer asks surviving primaries for their GSN state."""

    new_sequencer: str
    sync_id: int


@dataclass(frozen=True, slots=True)
class SequencerSyncReply:
    """A primary's view of sequencing state, for GSN recovery.

    ``max_gsn`` is the highest GSN the member has seen (assigned or
    committed); ``assignments`` maps request id → GSN for every assignment
    the member knows about (uncommitted plus a bounded tail of recent
    commits, so members that missed a broadcast can be caught up);
    ``unassigned`` lists update requests it has buffered that never
    received a GSN assignment, so the new sequencer can (re)assign them
    deterministically.
    """

    member: str
    sync_id: int
    max_gsn: int
    csn: int
    assignments: tuple[tuple[int, int], ...]  # (request_id, gsn), sorted by gsn
    unassigned: tuple[int, ...]  # request ids, sorted


@dataclass(frozen=True, slots=True)
class StateTransferRequest:
    """A rejoining primary asks the current sequencer for a state transfer.

    Not in the paper (§4.1's failure handling was omitted); our completion
    is documented in DESIGN.md §9.  The sequencer answers with its own
    sequencing state and relays the request to a *donor* — a live serving
    primary — which ships the committed application state.
    """

    requester: str
    xfer_id: int  # requester-local transfer attempt counter


@dataclass(frozen=True, slots=True)
class StateTransferRelay:
    """Sequencer-to-donor forwarding of a :class:`StateTransferRequest`.

    ``max_gsn`` carries the sequencer's authoritative GSN so the donor's
    snapshot reply also brings the requester's ``my_gsn`` current even if
    the donor itself lags.
    """

    requester: str
    xfer_id: int
    max_gsn: int


@dataclass(frozen=True, slots=True)
class StateTransferSnapshot:
    """The donor's reply to a rejoining primary: everything needed to
    re-enter the primary group at full strength.

    * ``snapshot``/``csn`` — the committed application state and its commit
      sequence number (a consistent cut: the simulation is single-threaded
      and the donor captures both in one step);
    * ``max_gsn`` — the highest GSN known (donor's, joined with the
      sequencer's via the relay);
    * ``commit_wait`` — the *uncommitted log suffix*: updates the donor has
      buffered with an assigned GSN above ``csn``, shipped as full
      ``(gsn, Request)`` pairs so the requester can commit them in order
      (it missed the client multicasts while crashed);
    * ``assignments`` — request id → GSN bindings (dedup across failover
      re-broadcasts);
    * ``skips`` — no-op GSNs declared by past failovers, still above
      ``csn``.

    ``snapshot`` is ``None`` when no donor existed (the requester was the
    only serving primary); the requester then keeps its retained state.
    """

    member: str
    xfer_id: int
    csn: int
    max_gsn: int
    snapshot: Any
    commit_wait: tuple[tuple[int, "Request"], ...] = ()
    unassigned: tuple["Request", ...] = ()
    assignments: tuple[tuple[int, int], ...] = ()
    skips: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class GsnSkip:
    """Sequencer-declared no-op GSNs.

    After a failover the new sequencer may find GSNs below its recovered
    maximum that no surviving member can attribute to a request (the old
    sequencer assigned them and crashed before any broadcast survived).
    Members treat these as committed no-ops so the commit order has no
    holes.
    """

    gsns: tuple[int, ...]


# ---------------------------------------------------------------------------
# Outcomes delivered to the client application
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ReadOutcome:
    """What the client application learns about one read."""

    request_id: int
    value: Any
    response_time: Optional[float]  # None if no reply ever arrived
    timing_failure: bool
    replicas_selected: int
    first_replica: Optional[str]
    deferred: bool
    gsn: int  # version of the delivered response (-1 if none)


@dataclass(frozen=True, slots=True)
class UpdateOutcome:
    """What the client application learns about one update."""

    request_id: int
    value: Any
    response_time: float
    first_replica: str
    gsn: int
