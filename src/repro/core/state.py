"""The replicated-object interface.

A replica hosts one :class:`ReplicatedObject`.  Update methods mutate it;
read-only methods observe it; the lazy-propagation machinery moves whole
snapshots from the primary group to the secondary group, so objects must be
snapshot/restore-able.  Example applications live in :mod:`repro.apps`.
"""

from __future__ import annotations

import copy
from typing import Any


class ReplicatedObject:
    """Base class for application state hosted on each replica.

    Subclasses implement ``invoke`` for both reads and updates; the
    middleware, not the object, decides which methods are read-only (via
    the client's read-only registry, §2).  The default snapshot/restore
    deep-copies ``__dict__``, which suits small objects; large apps can
    override with something smarter.
    """

    def invoke(self, method: str, args: tuple) -> Any:
        """Execute ``method(*args)`` against the state; return its result."""
        handler = getattr(self, method, None)
        if handler is None or not callable(handler):
            raise AttributeError(
                f"{type(self).__name__} has no invokable method {method!r}"
            )
        return handler(*args)

    def snapshot(self) -> Any:
        """An opaque, self-contained copy of the current state."""
        return copy.deepcopy(self.__dict__)

    def restore(self, snapshot: Any) -> None:
        """Replace the current state with a snapshot."""
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(snapshot))


class CounterObject(ReplicatedObject):
    """Minimal replicated object used throughout the test suite.

    ``increment``/``add`` are updates, ``get`` is read-only.  ``get``
    returns the counter value, so staleness in versions equals the numeric
    lag — handy for asserting consistency bounds.
    """

    def __init__(self) -> None:
        self.value = 0
        self.history: list[int] = []

    def increment(self) -> int:
        self.value += 1
        self.history.append(self.value)
        return self.value

    def add(self, amount: int) -> int:
        self.value += int(amount)
        self.history.append(self.value)
        return self.value

    def get(self) -> int:
        return self.value

    def version_count(self) -> int:
        return len(self.history)
