"""Admission control (the Conclusions' first proposed extension).

The paper: "Since we provide probabilistic temporal guarantees, we
currently admit all the clients and inform a client if the observed
failure probability exceeds the client's expectations after the failures
have been detected.  However, with some modifications, we can also use our
framework to perform admission control, in order to determine the clients
that can be admitted based on the current availability of the replicas."

This module makes those modifications.  An :class:`AdmissionController`
evaluates a prospective client's QoS against the *same* probabilistic
models the selection algorithm uses — the replicas' response-time
distributions and the secondary group's staleness factor, taken from a
reference repository (any admitted client's, or a dedicated monitor's) —
plus a load model for the extra requests the new client would add:

1. **Feasibility**: with every available replica selected, is the
   predicted ``P_K(d)`` (single-failure-tolerant, like Algorithm 1) at
   least the requested ``P_c(d)``?  If the pool cannot meet the QoS even
   using everything, the client is rejected outright.
2. **Capacity**: each admitted client consumes replica-time.  The
   controller tracks the admitted clients' expected read/update service
   demand (from their QoS + declared request rate) and rejects a client
   whose addition would push expected utilization of the serving replicas
   past a configurable bound (queueing would then invalidate the very
   distributions the guarantee rests on).

The controller is advisory — it owns no sockets and mutates nothing; the
service layer consults it in :meth:`ReplicatedService.create_client` when
an instance is installed (see ``admission_controller`` on the service).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.prediction import ResponseTimePredictor
from repro.core.qos import QoSSpec
from repro.core.selection import ReplicaView, _PkAccumulator, sort_candidates


@dataclass(frozen=True)
class ClientProfile:
    """What a prospective client declares at admission time."""

    name: str
    qos: QoSSpec
    read_rate: float  # expected read requests per second
    update_rate: float = 0.0  # expected update requests per second

    def __post_init__(self) -> None:
        if self.read_rate < 0 or self.update_rate < 0:
            raise ValueError("request rates must be non-negative")


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict, with the evidence behind it."""

    admitted: bool
    reason: str
    achievable_probability: float  # best P_K(d) the pool can offer
    projected_utilization: float  # serving-replica utilization if admitted


@dataclass
class AdmissionConfig:
    """Tuning knobs for the controller."""

    max_utilization: float = 0.7  # keep queues in the regime the model saw
    mean_read_service_time: float = 0.1  # seconds, from the service config
    mean_update_service_time: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.max_utilization <= 1.0:
            raise ValueError(
                f"max utilization must be in (0, 1], got {self.max_utilization!r}"
            )
        if self.mean_read_service_time <= 0 or self.mean_update_service_time <= 0:
            raise ValueError("mean service times must be positive")


class AdmissionController:
    """Decides whether a client's QoS can be honoured right now."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.admitted: dict[str, ClientProfile] = {}
        self.rejections: list[tuple[str, str]] = []
        # Observed (not declared) request rates, fed by the runtime hook
        # below; client name -> (read_rate, update_rate).
        self.observed: dict[str, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Feasibility: can the pool meet the QoS at all?
    # ------------------------------------------------------------------
    def achievable_probability(
        self,
        candidates: list[ReplicaView],
        qos: QoSSpec,
        stale_factor: float,
    ) -> float:
        """Best single-failure-tolerant ``P_K(d)`` using every candidate.

        Mirrors Algorithm 1's accounting: the candidate with the highest
        immediate CDF is excluded from the product (it plays the crash
        victim), everything else is included.
        """
        if not candidates:
            return 0.0
        ordered = sort_candidates(candidates)
        best = max(ordered, key=lambda r: r.immediate_cdf)
        acc = _PkAccumulator(stale_factor)
        for replica in ordered:
            if replica is not best:
                acc.include(replica)
        return acc.probability()

    # ------------------------------------------------------------------
    # Capacity: would the added load invalidate the model?
    # ------------------------------------------------------------------
    def projected_utilization(
        self,
        prospective: ClientProfile,
        serving_replicas: int,
        avg_replicas_per_read: float,
        num_primaries: int,
    ) -> float:
        """Expected serving-replica utilization with ``prospective`` added.

        Reads land on ``avg_replicas_per_read`` of the ``serving_replicas``
        (Algorithm 1 replicates each read); updates execute on every
        serving primary.
        """
        if serving_replicas <= 0:
            return float("inf")
        demand = self._demand(
            list(self.admitted.values()) + [prospective],
            avg_replicas_per_read,
            num_primaries,
        )
        return demand / serving_replicas

    def _demand(
        self,
        profiles: list[ClientProfile],
        avg_replicas_per_read: float,
        num_primaries: int,
    ) -> float:
        """Total expected replica-seconds per second of the given clients."""
        cfg = self.config
        demand = 0.0
        for profile in profiles:
            demand += (
                profile.read_rate
                * cfg.mean_read_service_time
                * max(1.0, avg_replicas_per_read)
            )
            demand += (
                profile.update_rate * cfg.mean_update_service_time * num_primaries
            )
        return demand

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def evaluate(
        self,
        profile: ClientProfile,
        candidates: list[ReplicaView],
        stale_factor: float,
        num_primaries: int,
        avg_replicas_per_read: Optional[float] = None,
    ) -> AdmissionDecision:
        """Evaluate (without recording) whether ``profile`` can be admitted."""
        if not candidates:
            # An empty replica pool can serve nobody; reject explicitly
            # rather than letting the capacity arithmetic divide by zero.
            return AdmissionDecision(
                admitted=False,
                reason="no serving replicas available",
                achievable_probability=0.0,
                projected_utilization=float("inf"),
            )
        achievable = self.achievable_probability(
            candidates, profile.qos, stale_factor
        )
        if avg_replicas_per_read is None:
            # Conservative default: assume each read consumes two replicas
            # (the seed member plus one — the minimum Algorithm 1 selects).
            avg_replicas_per_read = 2.0
        utilization = self.projected_utilization(
            profile, len(candidates), avg_replicas_per_read, num_primaries
        )
        if achievable < profile.qos.min_probability:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"pool cannot reach P_c={profile.qos.min_probability:.2f} "
                    f"(best achievable {achievable:.3f})"
                ),
                achievable_probability=achievable,
                projected_utilization=utilization,
            )
        if utilization > self.config.max_utilization:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"projected utilization {utilization:.2f} exceeds bound "
                    f"{self.config.max_utilization:.2f}"
                ),
                achievable_probability=achievable,
                projected_utilization=utilization,
            )
        return AdmissionDecision(
            admitted=True,
            reason="feasible within capacity",
            achievable_probability=achievable,
            projected_utilization=utilization,
        )

    def admit(self, profile: ClientProfile, decision: AdmissionDecision) -> None:
        """Record an admitted client (call after a positive ``evaluate``)."""
        if not decision.admitted:
            raise ValueError(f"cannot record a rejected client {profile.name!r}")
        self.admitted[profile.name] = profile

    def reject(self, profile: ClientProfile, decision: AdmissionDecision) -> None:
        self.rejections.append((profile.name, decision.reason))

    def release(self, name: str) -> None:
        """A client departed; its demand no longer counts."""
        self.admitted.pop(name, None)
        self.observed.pop(name, None)

    # ------------------------------------------------------------------
    # Runtime reassessment against observed demand (DESIGN.md §11)
    # ------------------------------------------------------------------
    def observe_demand(
        self, name: str, read_rate: float, update_rate: float = 0.0
    ) -> None:
        """Feed a client's *measured* request rates.

        Admission decisions rest on declared rates; a client that
        under-declared (or whose workload grew) silently erodes everyone's
        guarantee.  :meth:`reassess` re-runs the capacity check with these
        observations substituted for the declarations.
        """
        if read_rate < 0 or update_rate < 0:
            raise ValueError("observed rates must be non-negative")
        if name in self.admitted:
            self.observed[name] = (read_rate, update_rate)

    def effective_profile(self, name: str) -> ClientProfile:
        """The admitted profile with observed rates substituted (if any)."""
        profile = self.admitted[name]
        rates = self.observed.get(name)
        if rates is None:
            return profile
        return ClientProfile(
            name=profile.name,
            qos=profile.qos,
            read_rate=rates[0],
            update_rate=rates[1],
        )

    def reassess(
        self,
        serving_replicas: int,
        num_primaries: int,
        avg_replicas_per_read: float = 2.0,
    ) -> list[str]:
        """Re-evaluate the admitted set against observed demand.

        Returns the clients that would have to go (largest observed
        demand first, deterministic name tie-break) to bring projected
        utilization back under the bound.  Advisory, like everything else
        here: the caller decides whether to release, throttle, or merely
        flag them — the overload campaign feeds them to the degradation
        ladder's shed tier.
        """
        if serving_replicas <= 0:
            return sorted(self.admitted)
        remaining = {
            name: self.effective_profile(name) for name in self.admitted
        }
        flagged: list[str] = []
        bound = self.config.max_utilization * serving_replicas
        while remaining:
            demand = self._demand(
                list(remaining.values()), avg_replicas_per_read, num_primaries
            )
            if demand <= bound:
                break
            worst = max(
                remaining.values(),
                key=lambda p: (
                    self._demand([p], avg_replicas_per_read, num_primaries),
                    p.name,
                ),
            )
            flagged.append(worst.name)
            del remaining[worst.name]
        return flagged


def evaluate_against_client(
    controller: AdmissionController,
    profile: ClientProfile,
    reference_predictor: ResponseTimePredictor,
    primary_names: list[str],
    secondary_names: list[str],
    now: float,
) -> AdmissionDecision:
    """Convenience: build the candidate views from a live predictor.

    ``reference_predictor`` is typically an already-admitted client's
    (its repository holds the performance broadcasts every client sees).
    """
    candidates: list[ReplicaView] = []
    deadline = profile.qos.deadline
    for name in primary_names:
        cdf = reference_predictor.immediate_cdf(name, deadline)
        candidates.append(ReplicaView(name, True, cdf, cdf, ert=0.0))
    for name in secondary_names:
        immediate, delayed = reference_predictor.response_cdfs(name, deadline)
        candidates.append(ReplicaView(name, False, immediate, delayed, ert=0.0))
    stale_factor = reference_predictor.staleness_factor(
        profile.qos.staleness_threshold, now
    )
    return controller.evaluate(
        profile, candidates, stale_factor, num_primaries=len(primary_names)
    )
