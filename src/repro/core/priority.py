"""Higher-level QoS specifications: priority and cost (Conclusions).

The paper: "it is easy to extend our framework so that the clients can
replace the probability of timely response with a higher-level
specification, such as priority or the cost the client is willing to pay
for timely delivery.  The middleware can then internally map these higher
level inputs to an appropriate probability value and perform adaptive
replica selection, as described."

This module provides exactly those mappings:

* :class:`PriorityMapper` — a small ordered set of named service classes
  (e.g. platinum/gold/silver/bronze), each bound to a ``P_c(d)``;
* :class:`CostMapper` — a continuous budget → probability curve with
  diminishing returns: each additional unit of spend buys a constant
  factor of failure-probability reduction, which mirrors how extra
  replicas multiply ``(1 − F)`` terms in Equation 1.

Both produce ordinary :class:`~repro.core.qos.QoSSpec` values, so the rest
of the middleware is untouched — the mapping is the only new moving part,
as the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.qos import QoSSpec

DEFAULT_PRIORITY_LEVELS: dict[str, float] = {
    "platinum": 0.99,
    "gold": 0.9,
    "silver": 0.7,
    "bronze": 0.5,
    "best-effort": 0.0,
}


class PriorityMapper:
    """Maps named priority levels to minimum probabilities of timely
    response."""

    def __init__(self, levels: Optional[Mapping[str, float]] = None) -> None:
        levels = dict(levels) if levels is not None else dict(DEFAULT_PRIORITY_LEVELS)
        if not levels:
            raise ValueError("need at least one priority level")
        for name, probability in levels.items():
            if not name:
                raise ValueError("priority level names must be non-empty")
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"probability for {name!r} outside [0, 1]: {probability!r}"
                )
        self.levels = levels

    def probability_for(self, priority: str) -> float:
        try:
            return self.levels[priority]
        except KeyError:
            known = ", ".join(sorted(self.levels))
            raise KeyError(
                f"unknown priority {priority!r}; known levels: {known}"
            ) from None

    def qos_for(
        self, priority: str, staleness_threshold: int, deadline: float
    ) -> QoSSpec:
        """Build a full QoS spec from a priority level."""
        return QoSSpec(
            staleness_threshold=staleness_threshold,
            deadline=deadline,
            min_probability=self.probability_for(priority),
        )

    def ranked_levels(self) -> list[str]:
        """Level names from strongest to weakest guarantee."""
        return sorted(self.levels, key=lambda name: -self.levels[name])


@dataclass
class CostMapper:
    """Maps a spend budget to a probability with diminishing returns.

    The model: at zero budget the client gets ``base_probability``; each
    additional budget unit multiplies the *failure* probability by
    ``failure_discount`` (< 1).  So

        P(budget) = 1 − (1 − base) · failure_discount^budget

    capped at ``max_probability`` — the middleware never promises more
    than the replica pool can deliver.
    """

    base_probability: float = 0.5
    failure_discount: float = 0.5
    max_probability: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_probability <= 1.0:
            raise ValueError(f"base probability {self.base_probability!r}")
        if not 0.0 < self.failure_discount < 1.0:
            raise ValueError(
                f"failure discount must be in (0, 1), got {self.failure_discount!r}"
            )
        if not self.base_probability <= self.max_probability <= 1.0:
            raise ValueError(
                "max probability must lie between base probability and 1"
            )

    def probability_for(self, budget: float) -> float:
        if budget < 0:
            raise ValueError(f"negative budget {budget!r}")
        failure = (1.0 - self.base_probability) * (self.failure_discount**budget)
        return min(self.max_probability, 1.0 - failure)

    def qos_for(
        self, budget: float, staleness_threshold: int, deadline: float
    ) -> QoSSpec:
        return QoSSpec(
            staleness_threshold=staleness_threshold,
            deadline=deadline,
            min_probability=self.probability_for(budget),
        )

    def budget_for(self, probability: float) -> float:
        """Inverse mapping: the spend needed for a target probability.

        Useful for quoting prices; returns 0 for targets at or below the
        base, and raises for targets above ``max_probability``.
        """
        import math

        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability!r} outside [0, 1]")
        if probability > self.max_probability:
            raise ValueError(
                f"target {probability!r} exceeds the quotable maximum "
                f"{self.max_probability!r}"
            )
        if probability <= self.base_probability:
            return 0.0
        ratio = (1.0 - probability) / (1.0 - self.base_probability)
        return math.log(ratio) / math.log(self.failure_discount)
