"""The client-side information repository (§5.2, §5.4).

Each client gateway keeps, per replica, sliding windows of the most recent
``l`` measurements of service time ``t_s``, queuing delay ``t_q``, and
deferred-read buffering time ``t_b`` (fed by the replicas' performance
broadcasts), the most recently observed two-way gateway delay ``t_g``
(derived from replies; §5.2.1 keeps only the latest value because the
gateway delay "does not fluctuate as much as the other parameters do"),
and the time a reply was last received (for the elapsed-response-time
``ert`` ordering that avoids hot spots).

For the staleness model (§5.4.1) it keeps a sliding window of the lazy
publisher's ``<n_u, t_u>`` pairs (update-arrival-rate estimate) and the
most recent ``<n_L, t_L>`` with its local receipt time (so
``t_l = (t_L + t_z) mod T_L`` can be evaluated at selection time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.requests import PerfBroadcast
from repro.stats.pmf import DEFAULT_QUANTUM
from repro.stats.sliding_window import PairWindow, SlidingWindow


@dataclass
class ReplicaStats:
    """Per-replica performance history at one client."""

    ts_window: SlidingWindow
    tq_window: SlidingWindow
    tb_window: SlidingWindow
    latest_tg: Optional[float] = None
    last_reply_at: Optional[float] = None
    broadcasts_received: int = 0

    @property
    def has_history(self) -> bool:
        return bool(self.ts_window) and bool(self.tq_window)


@dataclass(frozen=True)
class LazyObservation:
    """The most recent ``<n_L, t_L>`` from the publisher, with receipt time.

    ``interval`` is the lazy update interval the publisher announced (set
    when the adaptive controller is tuning T_L; None means "use the
    configured constant").
    """

    n_l: int
    t_l: float
    received_at: float
    interval: Optional[float] = None


class ClientInfoRepository:
    """Everything one client has learned by monitoring the replicas."""

    def __init__(
        self, window_size: int = 20, quantum: float = DEFAULT_QUANTUM
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window size must be positive, got {window_size!r}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.window_size = window_size
        # The windows maintain incremental histograms on this grid; the
        # predictor reuses them when its quantum matches (it falls back to
        # raw samples otherwise, so a mismatch costs speed, not accuracy).
        self.quantum = float(quantum)
        self._stats: dict[str, ReplicaStats] = {}
        self.update_rate_window = PairWindow(window_size)
        self.latest_lazy: Optional[LazyObservation] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def stats_for(self, replica: str) -> ReplicaStats:
        stats = self._stats.get(replica)
        if stats is None:
            stats = ReplicaStats(
                ts_window=SlidingWindow(self.window_size, self.quantum),
                tq_window=SlidingWindow(self.window_size, self.quantum),
                tb_window=SlidingWindow(self.window_size, self.quantum),
            )
            self._stats[replica] = stats
        return stats

    def known_replicas(self) -> list[str]:
        return sorted(self._stats)

    def ert(self, replica: str, now: float) -> float:
        """Elapsed response time: time since the last reply from ``replica``.

        Replicas never heard from sort first (infinite ert), which is what
        bootstraps their history.
        """
        stats = self._stats.get(replica)
        if stats is None or stats.last_reply_at is None:
            return math.inf
        return now - stats.last_reply_at

    # ------------------------------------------------------------------
    # Ingest (called by the client gateway handler)
    # ------------------------------------------------------------------
    def record_broadcast(self, broadcast: PerfBroadcast) -> None:
        """Fold one performance broadcast into the windows (§5.4)."""
        stats = self.stats_for(broadcast.replica)
        stats.ts_window.record(broadcast.ts)
        stats.tq_window.record(broadcast.tq)
        if broadcast.tb is not None:
            stats.tb_window.record(broadcast.tb)
        stats.broadcasts_received += 1

    def record_staleness(self, broadcast: PerfBroadcast, now: float) -> None:
        """Fold the lazy publisher's staleness fields (§5.4.1)."""
        info = broadcast.staleness
        if info is None:
            return
        if info.t_u > 0:
            self.update_rate_window.record(info.n_u, info.t_u)
        self.latest_lazy = LazyObservation(
            info.n_l, info.t_l, now, info.lazy_interval
        )

    def record_reply(
        self, replica: str, tg: float, now: float, read: bool = True
    ) -> None:
        """Record the gateway delay and reply time derived from a reply.

        ``ert`` tracks *read* replies only: updates go to every primary
        regardless of selection, so counting their acks would permanently
        depress the primaries' ert, starve them of read duty, and silence
        the lazy publisher's staleness broadcasts (which ride on read
        completions, §5.4.1).  The gateway delay is refreshed either way.
        """
        stats = self.stats_for(replica)
        stats.latest_tg = max(0.0, tg)
        if read:
            stats.last_reply_at = now

    # ------------------------------------------------------------------
    # Staleness-model inputs (§5.4.1)
    # ------------------------------------------------------------------
    def update_arrival_rate(self) -> float:
        """``lambda_u`` = sum(n_u) / sum(t_u) over the sliding window."""
        return self.update_rate_window.rate(default=0.0)

    def time_since_lazy_update(self, now: float, lazy_interval: float) -> float:
        """``t_l = (t_L + t_z) mod T_L`` (§5.4.1); 0 if nothing observed.

        When the publisher announced a live interval (adaptive T_L), that
        value takes precedence over the configured constant.
        """
        if lazy_interval <= 0:
            raise ValueError(f"lazy interval must be positive, got {lazy_interval!r}")
        if self.latest_lazy is None:
            return 0.0
        if self.latest_lazy.interval is not None and self.latest_lazy.interval > 0:
            lazy_interval = self.latest_lazy.interval
        t_z = now - self.latest_lazy.received_at
        return (self.latest_lazy.t_l + t_z) % lazy_interval
