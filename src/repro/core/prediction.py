"""Probabilistic models: response-time distributions and staleness factor.

§5.2: the immediate-read response time of replica *i* is
``R_i = S_i + W_i + G_i`` and its distribution ``F^I_{R_i}`` is evaluated
as the discrete convolution of the pmfs of ``S_i`` and ``W_i`` (relative
frequencies over the sliding windows) with the most recently recorded
gateway delay ``G_i`` (a point mass).  A deferred read adds the lazy-wait
term ``U_i`` (``R_i = S_i + W_i + G_i + U_i``) whose pmf comes from the
recorded ``t_b`` history.

§5.1.3 / Eq. 4: the staleness factor of the secondary group is the Poisson
CDF ``P(N_u(t_l) <= a)`` with mean ``lambda_u * t_l``.

Prediction quality notes:

* before any history exists for a replica, the model returns an optimistic
  CDF of 1.0 — the ``ert``-sorted selection order then naturally schedules
  unknown replicas early, which bootstraps their windows (the paper starts
  measuring from the first requests in the same way);
* before any deferred read has been observed, ``U`` falls back to a
  Uniform(0, T_L) pmf — exactly the distribution of the residual time to
  the next lazy update seen by a request arriving at a random phase.
"""

from __future__ import annotations

from typing import Optional

from repro.core.repository import ClientInfoRepository
from repro.stats.pmf import DEFAULT_QUANTUM, DiscretePmf


class ResponseTimePredictor:
    """Evaluates ``F^I_{R_i}(d)``, ``F^D_{R_i}(d)``, and the staleness factor."""

    def __init__(
        self,
        repository: ClientInfoRepository,
        lazy_update_interval: float,
        quantum: float = DEFAULT_QUANTUM,
        default_gateway_delay: float = 0.001,
        bootstrap_cdf: float = 1.0,
        staleness_model: Optional["StalenessModel"] = None,
    ) -> None:
        if lazy_update_interval <= 0:
            raise ValueError(
                f"lazy interval must be positive, got {lazy_update_interval!r}"
            )
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        if not 0.0 <= bootstrap_cdf <= 1.0:
            raise ValueError(f"bootstrap cdf {bootstrap_cdf!r} outside [0, 1]")
        from repro.core.staleness import PoissonStalenessModel

        self.repository = repository
        self.lazy_update_interval = lazy_update_interval
        self.quantum = quantum
        self.default_gateway_delay = default_gateway_delay
        self.bootstrap_cdf = bootstrap_cdf
        self.staleness_model = staleness_model or PoissonStalenessModel()
        self.evaluations = 0  # number of distribution computations (Fig. 3)

    # ------------------------------------------------------------------
    # Response-time distributions (§5.2)
    # ------------------------------------------------------------------
    def response_cdfs(self, replica: str, deadline: float) -> tuple[float, float]:
        """``(F^I_{R_i}(d), F^D_{R_i}(d))`` for one replica.

        The immediate and deferred evaluations share the S*W*G convolution;
        the deferred one convolves in the lazy-wait pmf on top.
        """
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            return (self.bootstrap_cdf, self.bootstrap_cdf)
        self.evaluations += 1
        base = self._immediate_pmf(stats)
        immediate = base.cdf(deadline)
        delayed = base.convolve(self._lazy_wait_pmf(stats)).cdf(deadline)
        return (immediate, delayed)

    def immediate_cdf(self, replica: str, deadline: float) -> float:
        """``F^I_{R_i}(d)`` alone (primary replicas never defer)."""
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            return self.bootstrap_cdf
        self.evaluations += 1
        return self._immediate_pmf(stats).cdf(deadline)

    def _immediate_pmf(self, stats) -> DiscretePmf:
        service = DiscretePmf.from_samples(stats.ts_window.samples(), self.quantum)
        queuing = DiscretePmf.from_samples(stats.tq_window.samples(), self.quantum)
        gateway = (
            stats.latest_tg
            if stats.latest_tg is not None
            else self.default_gateway_delay
        )
        # G enters as its most recent value (§5.2.1): a shift of the grid.
        return service.convolve(queuing).shift(gateway)

    def _lazy_wait_pmf(self, stats) -> DiscretePmf:
        if stats.tb_window:
            return DiscretePmf.from_samples(stats.tb_window.samples(), self.quantum)
        # No deferred read observed yet: residual time to the next lazy
        # update for a uniformly random arrival phase is Uniform(0, T_L).
        bins = max(1, int(round(self.lazy_update_interval / self.quantum)))
        import numpy as np

        return DiscretePmf(self.quantum, 0, np.full(bins, 1.0 / bins))

    # ------------------------------------------------------------------
    # Staleness factor (§5.1.3, Eq. 4)
    # ------------------------------------------------------------------
    def staleness_factor(self, staleness_threshold: int, now: float) -> float:
        """``P(A_s(t) <= a)`` for the secondary group at time ``now``.

        Delegates to the configured :class:`~repro.core.staleness
        .StalenessModel` (Equation 4's Poisson model by default; §5.1.3
        notes non-Poisson variants are possible and
        :mod:`repro.core.staleness` provides them).
        """
        return self.staleness_model.staleness_factor(
            staleness_threshold,
            self.repository,
            now,
            self.lazy_update_interval,
        )
