"""Probabilistic models: response-time distributions and staleness factor.

§5.2: the immediate-read response time of replica *i* is
``R_i = S_i + W_i + G_i`` and its distribution ``F^I_{R_i}`` is evaluated
as the discrete convolution of the pmfs of ``S_i`` and ``W_i`` (relative
frequencies over the sliding windows) with the most recently recorded
gateway delay ``G_i`` (a point mass).  A deferred read adds the lazy-wait
term ``U_i`` (``R_i = S_i + W_i + G_i + U_i``) whose pmf comes from the
recorded ``t_b`` history.

§5.1.3 / Eq. 4: the staleness factor of the secondary group is the Poisson
CDF ``P(N_u(t_l) <= a)`` with mean ``lambda_u * t_l``.

Prediction quality notes:

* before any history exists for a replica, the model returns an optimistic
  CDF of 1.0 — the ``ert``-sorted selection order then naturally schedules
  unknown replicas early, which bootstraps their windows (the paper starts
  measuring from the first requests in the same way);
* before any deferred read has been observed, ``U`` falls back to a
  Uniform(0, T_L) pmf — exactly the distribution of the residual time to
  the next lazy update seen by a request arriving at a random phase.

Caching (beyond the paper, see DESIGN.md "Prediction-cache architecture"):
the convolved distributions only change when a new measurement lands, yet
steady-state read bursts re-evaluate them on every request.  Each
replica's base pmf (``S ⊛ W`` shifted by ``G``) and deferred pmf
(``base ⊛ U``) are therefore cached, keyed on the sliding windows'
monotonically increasing versions plus the latest gateway delay, and
rebuilt only when that key changes.  The cache is bit-for-bit equivalent
to fresh recomputation (property-tested), so Figure 3/4 results are
unchanged — only faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.repository import ClientInfoRepository, ReplicaStats
from repro.obs.metrics import MetricsRegistry
from repro.stats.pmf import DEFAULT_QUANTUM, DiscretePmf
from repro.stats.sliding_window import SlidingWindow


@dataclass
class _ReplicaPmfCache:
    """Cached distributions for one replica, tagged with version keys.

    ``base_key`` is ``(ts_version, tq_version, latest_tg)`` — the complete
    set of inputs to the immediate-read pmf.  ``lazy_key`` extends it for
    the deferred pmf with the ``t_b`` window version (or the uniform
    fallback's interval).  A key mismatch means a measurement landed and
    the entry is stale.
    """

    base_key: tuple
    base_pmf: DiscretePmf
    lazy_key: Optional[tuple] = None
    full_pmf: Optional[DiscretePmf] = None


class ResponseTimePredictor:
    """Evaluates ``F^I_{R_i}(d)``, ``F^D_{R_i}(d)``, and the staleness factor."""

    def __init__(
        self,
        repository: ClientInfoRepository,
        lazy_update_interval: float,
        quantum: float = DEFAULT_QUANTUM,
        default_gateway_delay: float = 0.001,
        bootstrap_cdf: float = 1.0,
        staleness_model: Optional["StalenessModel"] = None,
        use_cache: bool = True,
        metrics: Optional["MetricsRegistry"] = None,
        metrics_labels: Optional[dict] = None,
    ) -> None:
        if lazy_update_interval <= 0:
            raise ValueError(
                f"lazy interval must be positive, got {lazy_update_interval!r}"
            )
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        if not 0.0 <= bootstrap_cdf <= 1.0:
            raise ValueError(f"bootstrap cdf {bootstrap_cdf!r} outside [0, 1]")
        from repro.core.staleness import PoissonStalenessModel

        self.repository = repository
        self.lazy_update_interval = lazy_update_interval
        self.quantum = quantum
        self.default_gateway_delay = default_gateway_delay
        self.bootstrap_cdf = bootstrap_cdf
        self.staleness_model = staleness_model or PoissonStalenessModel()
        # Registry-backed counters, exposed under their historical names via
        # properties.  These feed Figure 3 reports, so a missing registry
        # means a private enabled one rather than a no-op.
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        labels = metrics_labels or {}
        # evaluations: number of distribution computations (Fig. 3).
        self._m_evaluations = metrics.counter("predictor_evaluations", **labels)
        # Versioned pmf cache (same counter pattern as ``evaluations``):
        # a hit returns a previously convolved pmf, a miss rebuilds it, an
        # invalidation is a miss that found a stale entry to replace.
        self.use_cache = use_cache
        self._m_cache_hits = metrics.counter("predictor_cache_hits", **labels)
        self._m_cache_misses = metrics.counter("predictor_cache_misses", **labels)
        self._m_cache_invalidations = metrics.counter(
            "predictor_cache_invalidations", **labels
        )
        self._pmf_cache: dict[str, _ReplicaPmfCache] = {}
        self._uniform_lazy_cache: dict[tuple[float, float], DiscretePmf] = {}

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def evaluations(self) -> int:
        return self._m_evaluations.value

    @property
    def cache_hits(self) -> int:
        return self._m_cache_hits.value

    @property
    def cache_misses(self) -> int:
        return self._m_cache_misses.value

    @property
    def cache_invalidations(self) -> int:
        return self._m_cache_invalidations.value

    # ------------------------------------------------------------------
    # Response-time distributions (§5.2)
    # ------------------------------------------------------------------
    def response_cdfs(self, replica: str, deadline: float) -> tuple[float, float]:
        """``(F^I_{R_i}(d), F^D_{R_i}(d))`` for one replica.

        The immediate and deferred evaluations share the S*W*G convolution;
        the deferred one convolves in the lazy-wait pmf on top.
        """
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            return (self.bootstrap_cdf, self.bootstrap_cdf)
        self._m_evaluations.inc()
        base = self._immediate_pmf(replica, stats)
        immediate = base.cdf(deadline)
        delayed = self._deferred_pmf(replica, stats, base).cdf(deadline)
        return (immediate, delayed)

    def immediate_cdf(self, replica: str, deadline: float) -> float:
        """``F^I_{R_i}(d)`` alone (primary replicas never defer)."""
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            return self.bootstrap_cdf
        self._m_evaluations.inc()
        return self._immediate_pmf(replica, stats).cdf(deadline)

    def response_pmfs(
        self, replica: str
    ) -> tuple[Optional[DiscretePmf], Optional[DiscretePmf]]:
        """The full ``(immediate, deferred)`` response-time pmfs of a replica.

        ``(None, None)`` before any history exists (the cdf methods'
        ``bootstrap_cdf`` regime).  Rides the same versioned cache as the
        cdf evaluations, so a steady-state caller gets the previously
        convolved distributions back without recomputation.  This is the
        sampling substrate of the aggregated client tier: one pmf pair per
        selected replica, then vectorized inverse-CDF draws for the whole
        arrival batch.
        """
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            return (None, None)
        self._m_evaluations.inc()
        base = self._immediate_pmf(replica, stats)
        return base, self._deferred_pmf(replica, stats, base)

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    # Two batch shapes appear in practice: one replica against many
    # deadlines (a batch of simultaneous reads with different QoS specs —
    # ``*_many``), and many replicas against one deadline (every candidate
    # of a single read — :meth:`candidate_cdfs`).  Both ride the versioned
    # pmf cache; the ``*_many`` forms additionally collapse the per-point
    # work into one :meth:`DiscretePmf.cdf_many` gather, and count as ONE
    # distribution evaluation (the pmf is convolved once however many
    # points it is read at).  Values are pinned to the scalar path by
    # property tests (exact for in-cache reads; 1e-12 budget overall).

    def immediate_cdf_many(self, replica: str, deadlines) -> np.ndarray:
        """``F^I_{R_i}(d)`` for a batch of deadlines, one gather."""
        deadlines = np.asarray(deadlines, dtype=float)
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            return np.full(deadlines.shape, self.bootstrap_cdf)
        self._m_evaluations.inc()
        return self._immediate_pmf(replica, stats).cdf_many(deadlines)

    def response_cdfs_many(
        self, replica: str, deadlines
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(F^I_{R_i}, F^D_{R_i})`` arrays for a batch of deadlines."""
        deadlines = np.asarray(deadlines, dtype=float)
        stats = self.repository.stats_for(replica)
        if not stats.has_history:
            full = np.full(deadlines.shape, self.bootstrap_cdf)
            return full, full.copy()
        self._m_evaluations.inc()
        base = self._immediate_pmf(replica, stats)
        immediate = base.cdf_many(deadlines)
        delayed = self._deferred_pmf(replica, stats, base).cdf_many(deadlines)
        return immediate, delayed

    def candidate_cdfs(
        self, primaries, secondaries, deadline: float
    ) -> tuple[list[float], list[tuple[float, float]]]:
        """Every candidate's cdf values for one read, in one call.

        Fuses the per-read loop the client gateway runs for Algorithm 1:
        ``immediate_cdf`` for each primary, ``response_cdfs`` for each
        secondary.  The body replays the scalar methods' exact sequence of
        repository lookups, cache operations, and counter increments, so
        the fused path is bit-identical to calling them one by one — it
        just does so without re-entering a Python method (and re-binding
        ``self`` attributes) per replica.
        """
        stats_for = self.repository.stats_for
        bootstrap = self.bootstrap_cdf
        inc = self._m_evaluations.inc
        primary_cdfs: list[float] = []
        for name in primaries:
            stats = stats_for(name)
            if not stats.has_history:
                primary_cdfs.append(bootstrap)
                continue
            inc()
            primary_cdfs.append(self._immediate_pmf(name, stats).cdf(deadline))
        secondary_pairs: list[tuple[float, float]] = []
        for name in secondaries:
            stats = stats_for(name)
            if not stats.has_history:
                secondary_pairs.append((bootstrap, bootstrap))
                continue
            inc()
            base = self._immediate_pmf(name, stats)
            secondary_pairs.append(
                (
                    base.cdf(deadline),
                    self._deferred_pmf(name, stats, base).cdf(deadline),
                )
            )
        return primary_cdfs, secondary_pairs

    # ------------------------------------------------------------------
    # Versioned pmf cache
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/invalidation counters for benchmark reports."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "invalidations": self.cache_invalidations,
        }

    def clear_cache(self) -> None:
        self._pmf_cache.clear()
        self._uniform_lazy_cache.clear()

    def _immediate_pmf(self, replica: str, stats: ReplicaStats) -> DiscretePmf:
        key = (
            stats.ts_window.version,
            stats.tq_window.version,
            stats.latest_tg,
        )
        if self.use_cache:
            entry = self._pmf_cache.get(replica)
            if entry is not None:
                if entry.base_key == key:
                    self._m_cache_hits.inc()
                    return entry.base_pmf
                self._m_cache_invalidations.inc()
            self._m_cache_misses.inc()
        base = self._compute_immediate_pmf(stats)
        if self.use_cache:
            # Replacing the whole entry also drops the stale deferred pmf.
            self._pmf_cache[replica] = _ReplicaPmfCache(base_key=key, base_pmf=base)
        return base

    def _deferred_pmf(
        self, replica: str, stats: ReplicaStats, base: DiscretePmf
    ) -> DiscretePmf:
        if stats.tb_window:
            lazy_key = ("tb", stats.tb_window.version)
        else:
            lazy_key = ("uniform", self.lazy_update_interval)
        entry = self._pmf_cache.get(replica) if self.use_cache else None
        if entry is not None:
            if entry.full_pmf is not None:
                if entry.lazy_key == lazy_key:
                    self._m_cache_hits.inc()
                    return entry.full_pmf
                self._m_cache_invalidations.inc()
            self._m_cache_misses.inc()
        full = base.convolve(self._lazy_wait_pmf(stats))
        if entry is not None:
            entry.lazy_key = lazy_key
            entry.full_pmf = full
        return full

    def _compute_immediate_pmf(self, stats: ReplicaStats) -> DiscretePmf:
        service = self._window_pmf(stats.ts_window)
        queuing = self._window_pmf(stats.tq_window)
        gateway = (
            stats.latest_tg
            if stats.latest_tg is not None
            else self.default_gateway_delay
        )
        # G enters as its most recent value (§5.2.1): a shift of the grid.
        return service.convolve(queuing).shift(gateway)

    def _window_pmf(self, window: SlidingWindow) -> DiscretePmf:
        histogram = window.histogram(self.quantum)
        if histogram is not None:
            return DiscretePmf.from_histogram(self.quantum, *histogram)
        # Quantum mismatch between window and predictor: bin raw samples.
        return DiscretePmf.from_samples(window.samples(), self.quantum)

    def _lazy_wait_pmf(self, stats: ReplicaStats) -> DiscretePmf:
        if stats.tb_window:
            return self._window_pmf(stats.tb_window)
        # No deferred read observed yet: residual time to the next lazy
        # update for a uniformly random arrival phase is Uniform(0, T_L).
        # Constant for a given (T_L, quantum), so memoized unconditionally.
        key = (self.lazy_update_interval, self.quantum)
        pmf = self._uniform_lazy_cache.get(key)
        if pmf is None:
            bins = max(1, int(round(self.lazy_update_interval / self.quantum)))
            pmf = DiscretePmf(self.quantum, 0, np.full(bins, 1.0 / bins))
            self._uniform_lazy_cache[key] = pmf
        return pmf

    # ------------------------------------------------------------------
    # Staleness factor (§5.1.3, Eq. 4)
    # ------------------------------------------------------------------
    def staleness_factor(self, staleness_threshold: int, now: float) -> float:
        """``P(A_s(t) <= a)`` for the secondary group at time ``now``.

        Delegates to the configured :class:`~repro.core.staleness
        .StalenessModel` (Equation 4's Poisson model by default; §5.1.3
        notes non-Poisson variants are possible and
        :mod:`repro.core.staleness` provides them).
        """
        return self.staleness_model.staleness_factor(
            staleness_threshold,
            self.repository,
            now,
            self.lazy_update_interval,
        )
