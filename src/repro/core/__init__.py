"""The paper's primary contribution: the tunable consistency middleware.

Layering (bottom → top):

* :mod:`repro.core.qos` — the two-dimensional consistency + timeliness QoS
  model of §2;
* :mod:`repro.core.requests` — the request model (read-only registry,
  update vs. read) and every protocol wire payload;
* :mod:`repro.core.state` — the versioned replicated-object interface;
* :mod:`repro.core.replica` / :mod:`repro.core.handlers` — the server-side
  gateway handlers implementing §4's tunable consistency protocols
  (sequential with sequencer/GSN/CSN/lazy publisher, and FIFO);
* :mod:`repro.core.repository`, :mod:`repro.core.prediction`,
  :mod:`repro.core.selection` — the client-side probabilistic machinery of
  §5 (performance history, response-time distributions, staleness factor,
  and Algorithm 1);
* :mod:`repro.core.client` — the client-side gateway handler with online
  monitoring and the timing-failure detector (§5.4);
* :mod:`repro.core.service` — assembles a whole replicated service
  (sequencer + primary group + secondary group + QoS group).
"""

from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.requests import ReadOutcome, Request, RequestKind, UpdateOutcome
from repro.core.state import CounterObject, ReplicatedObject
from repro.core.selection import ReplicaView, StateBasedSelection
from repro.core.staleness import (
    PoissonStalenessModel,
    RateMixtureStalenessModel,
    StalenessModel,
)
from repro.core.admission import AdmissionController, ClientProfile
from repro.core.priority import CostMapper, PriorityMapper
from repro.core.tuning import AdaptiveLazyController, StalenessTarget
from repro.core.client import ClientHandler
from repro.core.gateway import Gateway
from repro.core.service import ReplicatedService, ServiceConfig, build_testbed

__all__ = [
    "OrderingGuarantee",
    "QoSSpec",
    "ReadOutcome",
    "Request",
    "RequestKind",
    "UpdateOutcome",
    "CounterObject",
    "ReplicatedObject",
    "ReplicaView",
    "StateBasedSelection",
    "StalenessModel",
    "PoissonStalenessModel",
    "RateMixtureStalenessModel",
    "AdmissionController",
    "ClientProfile",
    "CostMapper",
    "PriorityMapper",
    "AdaptiveLazyController",
    "StalenessTarget",
    "ClientHandler",
    "Gateway",
    "ReplicatedService",
    "ServiceConfig",
    "build_testbed",
]
