"""Pluggable staleness models.

§5.1.3 derives the staleness factor ``P(A_s(t) <= a)`` under Poisson
update arrivals (Equation 4), and notes: "Although we have assumed Poisson
arrivals in our work, it should be possible to evaluate P(N_u(t_l) <= a)
for the case in which the arrival of update requests follows a
distribution that is not Poisson."  This module makes the model a
strategy so that note is realized:

* :class:`PoissonStalenessModel` — Equation 4 verbatim (the default);
* :class:`DeterministicStalenessModel` — periodic arrivals: exactly
  ``floor(lambda_u * t_l)`` updates since the last lazy round, so the
  factor is a step function (right for clock-driven updaters);
* :class:`RateMixtureStalenessModel` — a robust variant for *bursty*
  (over-dispersed) traffic: instead of collapsing the ``<n_u, t_u>``
  window to one average rate, it treats each recorded pair as a rate
  observation and averages the Poisson CDF over them, which keeps the
  factor honest when the arrival rate itself fluctuates;
* :class:`OptimisticStalenessModel` / :class:`PessimisticStalenessModel`
  — constant bounds, useful as ablation endpoints.

All models read the same repository state the paper's clients maintain
(the ``<n_u, t_u>`` sliding window and the latest ``<n_L, t_L>``).
"""

from __future__ import annotations

from repro.core.repository import ClientInfoRepository
from repro.stats.poisson import poisson_cdf


class StalenessModel:
    """Strategy interface: estimate ``P(A_s(t) <= a)`` from client state."""

    name = "abstract"

    def staleness_factor(
        self,
        threshold: int,
        repository: ClientInfoRepository,
        now: float,
        lazy_interval: float,
    ) -> float:
        raise NotImplementedError


class PoissonStalenessModel(StalenessModel):
    """Equation 4: ``P(N_u(t_l) <= a)`` with ``N_u ~ Poisson(lambda_u t_l)``."""

    name = "poisson"

    def staleness_factor(
        self,
        threshold: int,
        repository: ClientInfoRepository,
        now: float,
        lazy_interval: float,
    ) -> float:
        rate = repository.update_arrival_rate()
        if rate <= 0.0:
            return 1.0
        t_l = repository.time_since_lazy_update(now, lazy_interval)
        return poisson_cdf(threshold, rate * t_l)


class DeterministicStalenessModel(StalenessModel):
    """Periodic arrivals: exactly ``floor(lambda_u * t_l)`` updates."""

    name = "deterministic"

    def staleness_factor(
        self,
        threshold: int,
        repository: ClientInfoRepository,
        now: float,
        lazy_interval: float,
    ) -> float:
        rate = repository.update_arrival_rate()
        if rate <= 0.0:
            return 1.0
        t_l = repository.time_since_lazy_update(now, lazy_interval)
        expected = int(rate * t_l)
        return 1.0 if expected <= threshold else 0.0


class RateMixtureStalenessModel(StalenessModel):
    """Averages the Poisson CDF over the observed per-interval rates.

    With bursty traffic the single-rate Poisson model is over-confident:
    the mean rate may be low while bursts regularly exceed the staleness
    threshold.  Treating each recorded ``<n_u, t_u>`` pair as its own rate
    observation and averaging ``P(N(t_l) <= a | rate)`` over them captures
    that over-dispersion with the data the client already has.
    """

    name = "rate-mixture"

    def staleness_factor(
        self,
        threshold: int,
        repository: ClientInfoRepository,
        now: float,
        lazy_interval: float,
    ) -> float:
        pairs = repository.update_rate_window.pairs()
        usable = [(n, t) for n, t in pairs if t > 0]
        if not usable:
            return 1.0
        t_l = repository.time_since_lazy_update(now, lazy_interval)
        total = 0.0
        for count, duration in usable:
            rate = count / duration
            total += poisson_cdf(threshold, rate * t_l)
        return total / len(usable)


class OptimisticStalenessModel(StalenessModel):
    """Always assumes the secondary group is fresh (ablation endpoint)."""

    name = "optimistic"

    def staleness_factor(
        self,
        threshold: int,
        repository: ClientInfoRepository,
        now: float,
        lazy_interval: float,
    ) -> float:
        return 1.0


class PessimisticStalenessModel(StalenessModel):
    """Always assumes the secondary group is stale (ablation endpoint)."""

    name = "pessimistic"

    def staleness_factor(
        self,
        threshold: int,
        repository: ClientInfoRepository,
        now: float,
        lazy_interval: float,
    ) -> float:
        return 0.0
