"""The QoS model of §2.

Consistency is a two-dimensional attribute ``<ordering guarantee,
staleness threshold>``:

* the **ordering guarantee** is service-specific (we target sequential
  ordering, with FIFO also implemented as an alternative handler);
* the **staleness threshold** ``a`` is client-specified and counted in
  *versions*: a response may come from a replica whose state misses at most
  the ``a`` most recent committed updates.

Timeliness is the pair ``<deadline d, P_c(d)>``: the client expects a
response within ``d`` seconds of transmitting the request, with probability
at least ``P_c(d)``.  Timeliness applies only to read-only requests; update
requests carry only the ordering constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class OrderingGuarantee(Enum):
    """Service-wide ordering of operations (§2)."""

    SEQUENTIAL = "sequential"
    FIFO = "fifo"
    CAUSAL = "causal"  # named in §2; no handler implemented (as in the paper)


@dataclass(frozen=True)
class QoSSpec:
    """A client's consistency + timeliness requirement for read requests.

    Example from §2: "a copy of the document that is not more than 5
    versions old within 2.0 seconds with a probability of at least 0.7" is
    ``QoSSpec(staleness_threshold=5, deadline=2.0, min_probability=0.7)``.
    """

    staleness_threshold: int
    deadline: float
    min_probability: float

    def __post_init__(self) -> None:
        if self.staleness_threshold < 0:
            raise ValueError(
                f"staleness threshold must be >= 0, got {self.staleness_threshold!r}"
            )
        if not (self.deadline > 0 and math.isfinite(self.deadline)):
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")
        if not 0.0 <= self.min_probability <= 1.0:
            raise ValueError(
                f"min probability must be in [0, 1], got {self.min_probability!r}"
            )

    def relax_deadline(self, factor: float) -> "QoSSpec":
        """A copy with the deadline scaled by ``factor`` (sweeps/ablations)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        return QoSSpec(
            self.staleness_threshold, self.deadline * factor, self.min_probability
        )

    def describe(self) -> str:
        """Human-readable one-liner used in reports."""
        return (
            f"staleness<={self.staleness_threshold} versions, "
            f"deadline={self.deadline * 1000:.0f} ms, "
            f"P_c>={self.min_probability:.2f}"
        )
