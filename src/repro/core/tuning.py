"""Adaptive lazy-update-interval control.

§3: "The degree of divergence between the states of primary and secondary
replicas can be bounded by choosing an appropriate frequency for the lazy
update propagation."  The paper chooses that frequency statically (the
LUI of §6); this module chooses it *adaptively*, closing the loop with the
same Poisson model Eq. 4 uses for selection:

Given a staleness target — "just before a lazy update fires, the secondary
group should satisfy ``P(A_s <= a) >= p``" — and the measured update
arrival rate ``lambda_u``, the controller solves for the largest Poisson
mean ``m*`` with ``P(N <= a | m*) >= p`` and recommends
``T_L = m* / lambda_u``: the longest interval (fewest propagation
messages) that still meets the consistency target.  The rate estimate is
an EWMA over per-interval counts, so the interval tightens during update
storms and relaxes when traffic quiets down.

Wire-up: pass ``adaptive_lazy_target`` in
:class:`~repro.core.service.ServiceConfig`; the lazy publisher re-tunes on
every tick and announces the interval in effect through its staleness
broadcasts (clients need ``T_L`` for the ``t_l`` modulo of §5.4.1).

Precedence (DESIGN.md §16): when the closed-loop
:class:`~repro.core.controller.ConsistencyController` is configured as
well, its interval wins — but is clamped from above by
:meth:`AdaptiveLazyController.recommended_interval`, because that value
is the *longest* interval still meeting the declared staleness target,
i.e. a consistency bound no tuner may exceed.  The handler's
``_apply_lazy_interval`` is the single writer resolving both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.poisson import poisson_cdf


@dataclass(frozen=True)
class StalenessTarget:
    """The consistency goal the controller maintains.

    At the most stale instant (immediately before a lazy propagation) the
    secondary group should still satisfy ``P(A_s <= threshold) >=
    probability``.
    """

    threshold: int
    probability: float

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError(f"negative staleness threshold {self.threshold!r}")
        if not 0.0 < self.probability < 1.0:
            raise ValueError(
                f"target probability must be in (0, 1), got {self.probability!r}"
            )


def max_poisson_mean(threshold: int, probability: float, tol: float = 1e-6) -> float:
    """Largest mean ``m`` with ``P(Poisson(m) <= threshold) >= probability``.

    Monotone in ``m`` (the CDF falls as the mean grows), so a bisection
    over ``m`` suffices.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability!r}")
    if threshold < 0:
        return 0.0
    low, high = 0.0, 1.0
    while poisson_cdf(threshold, high) >= probability:
        high *= 2.0
        if high > 1e9:  # pragma: no cover - absurd targets
            return high
    while high - low > tol * max(1.0, high):
        mid = (low + high) / 2.0
        if poisson_cdf(threshold, mid) >= probability:
            low = mid
        else:
            high = mid
    return low


class AdaptiveLazyController:
    """Tunes the lazy update interval to hold a staleness target."""

    def __init__(
        self,
        target: StalenessTarget,
        min_interval: float = 0.1,
        max_interval: float = 30.0,
        ewma_alpha: float = 0.3,
        initial_rate: float = 0.0,
    ) -> None:
        if min_interval <= 0 or max_interval < min_interval:
            raise ValueError(
                f"invalid interval bounds [{min_interval}, {max_interval}]"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma alpha must be in (0, 1], got {ewma_alpha!r}")
        self.target = target
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.ewma_alpha = ewma_alpha
        self._rate = float(initial_rate)
        self._have_observation = initial_rate > 0
        # The budget: the largest tolerable expected update count per
        # interval, fixed by the target alone.
        self.mean_budget = max_poisson_mean(target.threshold, target.probability)
        self.observations = 0

    @property
    def estimated_rate(self) -> float:
        """Current EWMA of the update arrival rate (per second)."""
        return self._rate

    def observe(self, updates: int, interval: float) -> None:
        """Fold one lazy interval's update count into the rate estimate."""
        if updates < 0:
            raise ValueError(f"negative update count {updates!r}")
        if interval <= 0:
            return
        rate = updates / interval
        if self._have_observation:
            self._rate += self.ewma_alpha * (rate - self._rate)
        else:
            self._rate = rate
            self._have_observation = True
        self.observations += 1

    def recommended_interval(self) -> float:
        """The longest interval that still meets the staleness target."""
        if self._rate <= 0.0:
            return self.max_interval  # no updates: propagate rarely
        raw = self.mean_budget / self._rate
        return min(self.max_interval, max(self.min_interval, raw))
