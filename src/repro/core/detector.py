"""φ-accrual failure detection for gray failures.

Every binary detector in the stack — the membership service's heartbeat
timeout, the client's per-read deadline timer, the sequential handler's
fixed commit-gap watchdog — answers "is this peer dead?".  The paper's
failure model is *timing* failures: replicas that are alive but too slow
to meet ``P_c(d)``.  This module adds the continuous answer: a per-peer
suspicion level φ computed from the peer's observed inter-arrival
history, after Hayashibara et al.'s φ-accrual detector.

For each peer we keep a sliding window of inter-arrival times of
*any* evidence of life (replies, performance broadcasts, lazy updates —
the caller decides what to feed :meth:`PhiAccrualDetector.record`).  At
query time, with ``t`` seconds elapsed since the last arrival::

    φ(t) = -log10( P(next arrival later than t) )

under a normal fit of the window (σ floored so a near-constant history
does not make φ explode on microscopic delays).  φ ≈ 1 means "this gap
would happen one time in ten"; φ ≥ 8 is a one-in-10⁸ gap.  Because φ is
continuous, one detector serves several policies at different
thresholds: candidate *ejection* before Algorithm-1 at ``phi_suspect``,
earlier *hedging* at ``phi_hedge``, and an adaptive timeout
(``mean + k·σ``) for the commit-gap watchdog.

Suspicion is not eviction: a suspected peer is only *deprioritized*,
and :meth:`should_probe` meters occasional probe traffic at it so the
detector keeps observing — one on-time arrival resets φ and re-admits
the peer (gray failures heal; crash-style eviction stays with the
membership service).  Every suspect/clear edge is appended to
:attr:`PhiAccrualDetector.transitions` so the detection-quality scorer
(:mod:`repro.obs.detection`) can join them against the chaos engine's
ground-truth :class:`~repro.net.chaos.GrayFault` schedule.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.sim.tracing import NULL_TRACE, Trace

# φ is capped so exporters and comparisons never meet inf (a gap many
# sigmas out underflows the erfc tail to exactly 0.0).
PHI_CAP = 40.0


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs for one φ-accrual detector instance.

    ``window_size``
        Inter-arrival samples kept per peer.
    ``phi_suspect`` / ``phi_hedge``
        Suspicion thresholds: ejection from Algorithm-1 candidacy starts
        at ``phi_suspect``; hedging a single-replica read starts at the
        lower ``phi_hedge``.
    ``min_samples``
        Below this many samples a peer is never suspected (cold start).
    ``min_std``
        Absolute floor on the fitted σ (seconds); the effective floor is
        ``max(min_std, 0.1 × mean)`` so regular traffic does not produce
        a degenerate distribution.
    ``probe_interval``
        Minimum spacing of probe reads at a suspected peer.
    ``min_eject_keep``
        Candidate ejection always leaves at least this many unsuspected
        candidates; if suspicion is that widespread the detector stands
        aside (ejecting everyone is worse than trusting Algorithm-1).
    ``watchdog_multiplier``
        ``k`` in the adaptive timeout ``mean + k·σ``.
    ``quarantine_base`` / ``quarantine_max`` / ``quarantine_memory``
        Flap damping.  A flapping link alternates cut and connected
        several times a second; each connected half-period delivers an
        arrival that clears suspicion, and the freshly re-admitted peer
        immediately times out the next read.  On every *repeat*
        suspicion within ``quarantine_memory`` seconds, the clearing
        arrival re-admits the peer only after a quarantine of
        ``quarantine_base × 2^(repeats − 2)`` seconds (capped at
        ``quarantine_max``).  The first suspicion is never quarantined,
        so a one-off gap still re-admits instantly.
    """

    window_size: int = 64
    phi_suspect: float = 8.0
    phi_hedge: float = 4.0
    min_samples: int = 8
    min_std: float = 0.005
    probe_interval: float = 0.5
    min_eject_keep: int = 1
    watchdog_multiplier: float = 6.0
    quarantine_base: float = 0.2
    quarantine_max: float = 3.0
    quarantine_memory: float = 10.0

    def __post_init__(self) -> None:
        if self.window_size < 2:
            raise ValueError("window_size must be >= 2")
        if self.phi_suspect <= 0 or self.phi_hedge <= 0:
            raise ValueError("phi thresholds must be positive")
        if self.phi_hedge > self.phi_suspect:
            raise ValueError("phi_hedge must not exceed phi_suspect")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.min_std <= 0:
            raise ValueError("min_std must be positive")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.min_eject_keep < 1:
            raise ValueError("min_eject_keep must be >= 1")
        if self.watchdog_multiplier <= 0:
            raise ValueError("watchdog_multiplier must be positive")
        if self.quarantine_base < 0 or self.quarantine_max < 0:
            raise ValueError("quarantine durations must be non-negative")
        if self.quarantine_memory <= 0:
            raise ValueError("quarantine_memory must be positive")


@dataclass(frozen=True, slots=True)
class SuspicionTransition:
    """One suspect/clear edge, the scorer's input."""

    time: float
    peer: str
    phi: float
    suspected: bool


class PhiAccrualDetector:
    """Per-peer continuous suspicion from inter-arrival history."""

    def __init__(
        self,
        config: DetectorConfig,
        owner: str = "",
        metrics: MetricsRegistry = NULL_METRICS,
        trace: Trace = NULL_TRACE,
    ) -> None:
        self.config = config
        self.owner = owner
        self.trace = trace
        self._last: dict[str, float] = {}
        self._windows: dict[str, deque[float]] = {}
        self._suspected: set[str] = set()
        self._last_probe: dict[str, float] = {}
        self._suspect_times: dict[str, deque[float]] = {}
        self._quarantine_until: dict[str, float] = {}
        self.transitions: list[SuspicionTransition] = []
        labels = {"owner": owner} if owner else {}
        self._m_suspects = metrics.counter("detector_suspects", **labels)
        self._m_clears = metrics.counter("detector_clears", **labels)
        self._m_samples = metrics.counter("detector_samples", **labels)

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def record(self, peer: str, now: float) -> None:
        """Feed one arrival of evidence that ``peer`` is alive."""
        last = self._last.get(peer)
        self._last[peer] = now
        if last is None:
            self._windows[peer] = deque(maxlen=self.config.window_size)
            return
        interval = now - last
        if interval <= 0.0:
            return  # same-instant duplicates carry no timing information
        self._windows[peer].append(interval)
        self._m_samples.inc()
        if peer in self._suspected:
            self._clear(peer, now)

    def forget(self, peer: str) -> None:
        """Drop all state for a peer (it left the replica set for good)."""
        self._last.pop(peer, None)
        self._windows.pop(peer, None)
        self._suspected.discard(peer)
        self._last_probe.pop(peer, None)
        self._suspect_times.pop(peer, None)
        self._quarantine_until.pop(peer, None)

    # ------------------------------------------------------------------
    # Suspicion
    # ------------------------------------------------------------------
    def phi(self, peer: str, now: float) -> float:
        """Current suspicion level; 0.0 for unknown or cold peers."""
        window = self._windows.get(peer)
        if window is None or len(window) < self.config.min_samples:
            return 0.0
        elapsed = now - self._last[peer]
        if elapsed <= 0.0:
            return 0.0
        mean = sum(window) / len(window)
        var = sum((x - mean) ** 2 for x in window) / len(window)
        std = max(math.sqrt(var), self.config.min_std, 0.1 * mean)
        # P(next arrival later than elapsed) under Normal(mean, std).
        p_later = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        if p_later <= 0.0:
            return PHI_CAP
        return min(-math.log10(p_later), PHI_CAP)

    def suspicion_check(self, peer: str, now: float) -> float:
        """Compute φ and latch the suspect state on threshold crossing."""
        value = self.phi(peer, now)
        if value >= self.config.phi_suspect and peer not in self._suspected:
            self._suspected.add(peer)
            self._last_probe[peer] = now
            times = self._suspect_times.setdefault(peer, deque(maxlen=16))
            times.append(now)
            self.transitions.append(
                SuspicionTransition(now, peer, value, True)
            )
            self._m_suspects.inc()
            self.trace.emit(
                now, "detector.suspect", self.owner or "detector",
                peer=peer, phi=round(value, 2),
            )
        return value

    def _clear(self, peer: str, now: float) -> None:
        self._suspected.discard(peer)
        self._last_probe.pop(peer, None)
        repeats = sum(
            1
            for t in self._suspect_times.get(peer, ())
            if now - t <= self.config.quarantine_memory
        )
        if repeats >= 2 and self.config.quarantine_base > 0:
            # Flap damping: the peer keeps earning suspicion, so one
            # on-time arrival no longer buys instant re-admission.
            hold = min(
                self.config.quarantine_base * 2.0 ** (repeats - 2),
                self.config.quarantine_max,
            )
            self._quarantine_until[peer] = now + hold
        self.transitions.append(SuspicionTransition(now, peer, 0.0, False))
        self._m_clears.inc()
        self.trace.emit(
            now, "detector.clear", self.owner or "detector", peer=peer
        )

    def is_suspected(self, peer: str, now: Optional[float] = None) -> bool:
        """Latched suspicion, plus flap-damping quarantine when ``now``
        is supplied (quarantine expires by wall time, not by arrival)."""
        if peer in self._suspected:
            return True
        if now is None:
            return False
        return now < self._quarantine_until.get(peer, 0.0)

    def suspected(self) -> list[str]:
        return sorted(self._suspected)

    def under_suspicion(self, now: float) -> set[str]:
        """Peers currently latched *or* quarantined — the set a caller
        should route around when a healthy alternative exists."""
        out = set(self._suspected)
        for peer, until in self._quarantine_until.items():
            if now < until:
                out.add(peer)
        return out

    def should_probe(self, peer: str, now: float) -> bool:
        """Rate-limited permission to aim probe traffic at a suspect.

        Probing is what makes ejection reversible: without it, an
        ejected peer would never produce new arrivals and would stay
        suspected forever.
        """
        if peer not in self._suspected:
            return False
        if now - self._last_probe.get(peer, 0.0) < self.config.probe_interval:
            return False
        self._last_probe[peer] = now
        return True

    # ------------------------------------------------------------------
    # Adaptive timeouts
    # ------------------------------------------------------------------
    def adaptive_timeout(self, peer: str, fallback: float) -> float:
        """``mean + k·σ`` of the peer's inter-arrival history.

        Falls back to ``fallback`` until enough samples exist, and is
        clamped to ``[fallback / 2, 10 × fallback]`` so a pathological
        history cannot disable the watchdog entirely.
        """
        window = self._windows.get(peer)
        if window is None or len(window) < self.config.min_samples:
            return fallback
        mean = sum(window) / len(window)
        var = sum((x - mean) ** 2 for x in window) / len(window)
        std = max(math.sqrt(var), self.config.min_std, 0.1 * mean)
        timeout = mean + self.config.watchdog_multiplier * std
        return min(max(timeout, fallback / 2.0), 10.0 * fallback)

    def stats(self) -> dict:
        return {
            "peers": len(self._windows),
            "suspected": self.suspected(),
            "suspects_total": self._m_suspects.value,
            "clears_total": self._m_clears.value,
            "transitions": len(self.transitions),
        }
