"""Link latency models.

A latency model turns ``(message, rng)`` into a one-way delay.  The base
model combines a propagation-delay distribution with a per-byte
transmission term, which is enough to model both the paper's LAN and a
slower WAN for sensitivity studies.
"""

from __future__ import annotations

import random

from repro.net.message import Message
from repro.sim.rng import Constant, Distribution, Normal, Uniform


class LatencyModel:
    """One-way delay = propagation sample + size / bandwidth."""

    def __init__(
        self,
        propagation: Distribution,
        bandwidth_bytes_per_s: float = 0.0,
    ) -> None:
        if bandwidth_bytes_per_s < 0:
            raise ValueError(f"negative bandwidth {bandwidth_bytes_per_s!r}")
        self.propagation = propagation
        self.bandwidth_bytes_per_s = float(bandwidth_bytes_per_s)

    def delay(self, message: Message, rng: random.Random) -> float:
        base = self.propagation.sample(rng)
        if self.bandwidth_bytes_per_s > 0:
            base += message.size_bytes / self.bandwidth_bytes_per_s
        return max(0.0, base)

    def mean_delay(self, size_bytes: int = 256) -> float:
        base = self.propagation.mean()
        if self.bandwidth_bytes_per_s > 0:
            base += size_bytes / self.bandwidth_bytes_per_s
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyModel({self.propagation!r}, "
            f"bw={self.bandwidth_bytes_per_s})"
        )


class DegradedLatency(LatencyModel):
    """A gray-failure wrapper: base delay × ``factor`` + uniform jitter.

    The fabric composes one of these on the fly when a node or link is
    degraded (:meth:`~repro.net.network.Network.degrade_node` /
    :meth:`~repro.net.network.Network.degrade_link`), so the endpoint
    stays *alive* — heartbeats and replies still flow — but every
    message through it is late by a multiplicative slowdown plus an
    additive jitter sampled from the same per-link stream the base
    model uses (no extra RNG draws happen anywhere else).
    """

    def __init__(
        self, base: LatencyModel, factor: float = 1.0, jitter_s: float = 0.0
    ) -> None:
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor!r}")
        if jitter_s < 0.0:
            raise ValueError(f"negative degradation jitter {jitter_s!r}")
        super().__init__(base.propagation, base.bandwidth_bytes_per_s)
        self.base = base
        self.factor = factor
        self.jitter_s = jitter_s

    def delay(self, message: Message, rng: random.Random) -> float:
        delayed = self.base.delay(message, rng) * self.factor
        if self.jitter_s > 0.0:
            delayed += rng.uniform(0.0, self.jitter_s)
        return delayed

    def mean_delay(self, size_bytes: int = 256) -> float:
        return self.base.mean_delay(size_bytes) * self.factor + self.jitter_s / 2.0


class LanLatency(LatencyModel):
    """A 100 Mbps-LAN-like link: sub-millisecond jittered delay.

    Default: ~0.3 ms mean propagation with mild jitter and 100 Mbps
    serialization, matching the paper's testbed scale where gateway-to-
    gateway delay is small and stable relative to service time (§5.2.1
    exploits this by keeping only the latest gateway-delay value).
    """

    def __init__(
        self,
        mean_s: float = 0.0003,
        jitter_s: float = 0.0001,
        bandwidth_bytes_per_s: float = 100e6 / 8,
    ) -> None:
        super().__init__(
            Normal(mean_s, jitter_s, floor=mean_s * 0.1),
            bandwidth_bytes_per_s,
        )


class WanLatency(LatencyModel):
    """A wide-area-like link with tens of milliseconds of spread."""

    def __init__(
        self,
        low_s: float = 0.02,
        high_s: float = 0.08,
        bandwidth_bytes_per_s: float = 10e6 / 8,
    ) -> None:
        super().__init__(Uniform(low_s, high_s), bandwidth_bytes_per_s)


class FixedLatency(LatencyModel):
    """Deterministic delay — useful for protocol unit tests."""

    def __init__(self, delay_s: float) -> None:
        super().__init__(Constant(delay_s), 0.0)
