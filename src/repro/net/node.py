"""Hosts: processing speed and transient overload.

The paper's testbed mixed 300 MHz and 1 GHz machines, and §1 motivates the
whole design with "hosts and links that either are inherently slow, or tend
to become slow due to transient overloads and failures".  A :class:`Host`
captures that: every service-time sample drawn by a replica running on the
host is multiplied by the host's *current* speed factor, and overload
windows can raise the factor temporarily.
"""

from __future__ import annotations


class Host:
    """A machine with a (possibly time-varying) relative slowness factor.

    ``speed_factor`` is a multiplier on service durations: ``1.0`` is the
    baseline machine, ``3.0`` is a machine three times slower (e.g. the
    300 MHz box next to the 1 GHz one).
    """

    def __init__(self, name: str, speed_factor: float = 1.0) -> None:
        if not name:
            raise ValueError("host name must be non-empty")
        if speed_factor <= 0:
            raise ValueError(f"speed factor must be positive, got {speed_factor!r}")
        self.name = name
        self.base_speed_factor = float(speed_factor)
        self._overload_factor = 1.0

    @property
    def speed_factor(self) -> float:
        """Current effective slowness multiplier."""
        return self.base_speed_factor * self._overload_factor

    def scale(self, duration: float) -> float:
        """Scale a nominal service duration by the current slowness."""
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        return duration * self.speed_factor

    # -- transient overload (driven by repro.net.failures) --------------
    def begin_overload(self, factor: float) -> None:
        if factor < 1.0:
            raise ValueError(f"overload factor must be >= 1, got {factor!r}")
        self._overload_factor = float(factor)

    def end_overload(self) -> None:
        self._overload_factor = 1.0

    @property
    def overloaded(self) -> bool:
        return self._overload_factor > 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} x{self.speed_factor:g}>"
