"""Network messages.

Messages carry an opaque ``payload`` (protocol layers define their own
payload dataclasses), plus enough metadata for tracing: sender, recipient,
send time, a globally unique id, and an optional size used by
bandwidth-aware latency models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_MESSAGE_IDS = itertools.count(1)


def next_message_id() -> int:
    """Allocate a process-wide unique message id (monotonic)."""
    return next(_MESSAGE_IDS)


@dataclass(frozen=True, slots=True)
class Message:
    """One message in flight between two endpoints."""

    sender: str
    recipient: str
    payload: Any
    sent_at: float
    size_bytes: int = 256
    msg_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes!r}")

    @property
    def kind(self) -> str:
        """Best-effort payload type name, for traces and debugging."""
        return type(self.payload).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.msg_id} {self.sender}->{self.recipient} "
            f"{self.kind} @{self.sent_at:.6f}>"
        )
