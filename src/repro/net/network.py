"""The network fabric: endpoints, unicast/multicast, loss, partitions.

The fabric delivers messages between named :class:`Endpoint` objects with a
sampled one-way latency.  It implements the failure semantics the upper
layers need:

* **crashed endpoints** neither send nor receive (a crash while a message
  is in flight loses the message — delivery is re-checked at arrival time);
* **partitions** silently drop messages across the cut;
* an optional uniform **drop probability** models lossy links (the group
  layer adds reliability on top, as Ensemble does).

Per-pair latency overrides allow heterogeneous topologies (slow hosts/links,
as the paper's 300 MHz–1 GHz testbed had).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.net.node import Host
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace


class NetworkError(RuntimeError):
    """Raised for fabric misuse (unknown endpoint, duplicate attach, ...)."""


class Endpoint:
    """A named participant attached to a :class:`Network`.

    Subclasses override :meth:`deliver`.  ``send``/``multicast`` are
    convenience wrappers that go through the fabric.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("endpoint name must be non-empty")
        self.name = name
        self.network: Optional[Network] = None
        self.host: Optional[Host] = None

    # -- wiring --------------------------------------------------------
    def attached(self, network: "Network", host: Optional[Host]) -> None:
        """Called by the fabric on attach; override for setup hooks."""
        self.network = network
        self.host = host

    @property
    def sim(self) -> Simulator:
        if self.network is None:
            raise NetworkError(f"endpoint {self.name!r} is not attached")
        return self.network.sim

    @property
    def now(self) -> float:
        return self.sim.now

    # -- messaging -----------------------------------------------------
    def send(self, recipient: str, payload: Any, size_bytes: int = 256) -> Message:
        if self.network is None:
            raise NetworkError(f"endpoint {self.name!r} is not attached")
        return self.network.send(self.name, recipient, payload, size_bytes)

    def multicast(
        self, recipients: Iterable[str], payload: Any, size_bytes: int = 256
    ) -> list[Message]:
        if self.network is None:
            raise NetworkError(f"endpoint {self.name!r} is not attached")
        return self.network.multicast(self.name, recipients, payload, size_bytes)

    def deliver(self, message: Message) -> None:
        """Handle an arriving message.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Network:
    """Message fabric over a simulator."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        default_latency: LatencyModel,
        trace: Trace = NULL_TRACE,
        drop_probability: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop probability {drop_probability!r} outside [0, 1)")
        self.sim = sim
        self.rng = rng
        self.default_latency = default_latency
        self.trace = trace
        self.drop_probability = drop_probability
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._endpoints: dict[str, Endpoint] = {}
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], LatencyModel] = {}
        self._crashed: set[str] = set()
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []
        self._m_sent = self.metrics.counter("net_messages_sent")
        self._m_delivered = self.metrics.counter("net_messages_delivered")
        self._m_dropped = self.metrics.counter("net_messages_dropped")
        self._h_delivery_delay = self.metrics.histogram(
            "net_delivery_delay_seconds"
        )

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return self._m_sent.value

    @property
    def messages_delivered(self) -> int:
        return self._m_delivered.value

    @property
    def messages_dropped(self) -> int:
        return self._m_dropped.value

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, endpoint: Endpoint, host: Optional[Host] = None) -> None:
        if endpoint.name in self._endpoints:
            raise NetworkError(f"endpoint {endpoint.name!r} already attached")
        self._endpoints[endpoint.name] = endpoint
        if host is not None:
            self._hosts[endpoint.name] = host
        endpoint.attached(self, host)

    def detach(self, name: str) -> None:
        self._endpoints.pop(name, None)
        self._hosts.pop(name, None)
        self._crashed.discard(name)

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    def host_of(self, name: str) -> Optional[Host]:
        return self._hosts.get(name)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def set_link(self, sender: str, recipient: str, latency: LatencyModel) -> None:
        """Override latency for the directed pair ``sender -> recipient``."""
        self._links[(sender, recipient)] = latency

    def set_symmetric_link(self, a: str, b: str, latency: LatencyModel) -> None:
        self.set_link(a, b, latency)
        self.set_link(b, a, latency)

    def latency_for(self, sender: str, recipient: str) -> LatencyModel:
        return self._links.get((sender, recipient), self.default_latency)

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def crash(self, name: str) -> bool:
        """Stop ``name`` from sending or receiving until :meth:`recover`.

        Idempotent: crashing an already-crashed endpoint is a no-op (no
        duplicate trace record) and returns ``False``; the first crash
        returns ``True``.  Unknown endpoints raise :class:`NetworkError`.
        """
        if name not in self._endpoints:
            raise NetworkError(f"unknown endpoint {name!r}")
        if name in self._crashed:
            return False
        self._crashed.add(name)
        self.trace.emit(self.sim.now, "net.crash", name)
        return True

    def recover(self, name: str) -> bool:
        """Let a crashed endpoint send and receive again.

        Idempotent: recovering an endpoint that is already up is a no-op
        (no duplicate trace record) and returns ``False``; a real
        transition returns ``True``.  Unknown endpoints raise
        :class:`NetworkError` — silently "recovering" a name that was
        never attached hid typos in failure scripts.
        """
        if name not in self._endpoints:
            raise NetworkError(f"unknown endpoint {name!r}")
        if name not in self._crashed:
            return False
        self._crashed.discard(name)
        self.trace.emit(self.sim.now, "net.recover", name)
        return True

    def is_up(self, name: str) -> bool:
        return name in self._endpoints and name not in self._crashed

    def partition(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Block all traffic between the two endpoint sets."""
        cut = (frozenset(side_a), frozenset(side_b))
        self._partitions.append(cut)
        self.trace.emit(
            self.sim.now,
            "net.partition",
            "network",
            side_a=sorted(cut[0]),
            side_b=sorted(cut[1]),
        )

    def heal_partitions(self) -> None:
        self._partitions.clear()
        self.trace.emit(self.sim.now, "net.heal", "network")

    def _cut(self, sender: str, recipient: str) -> bool:
        for side_a, side_b in self._partitions:
            if (sender in side_a and recipient in side_b) or (
                sender in side_b and recipient in side_a
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self, sender: str, recipient: str, payload: Any, size_bytes: int = 256
    ) -> Message:
        if sender not in self._endpoints:
            raise NetworkError(f"unknown sender {sender!r}")
        message = Message(sender, recipient, payload, self.sim.now, size_bytes)
        self._m_sent.inc()
        if sender in self._crashed:
            self._drop(message, "sender-crashed")
            return message
        if recipient not in self._endpoints:
            self._drop(message, "unknown-recipient")
            return message
        if self._cut(sender, recipient):
            self._drop(message, "partitioned")
            return message
        if self.drop_probability > 0.0:
            if self.rng.stream("net.loss").random() < self.drop_probability:
                self._drop(message, "random-loss")
                return message
        link_rng = self.rng.stream(f"net.link.{sender}->{recipient}")
        delay = self.latency_for(sender, recipient).delay(message, link_rng)
        self.sim.schedule(delay, self._arrive, message)
        return message

    def multicast(
        self,
        sender: str,
        recipients: Iterable[str],
        payload: Any,
        size_bytes: int = 256,
    ) -> list[Message]:
        """Independent unicasts to each recipient (excluding the sender)."""
        return [
            self.send(sender, recipient, payload, size_bytes)
            for recipient in recipients
            if recipient != sender
        ]

    def _arrive(self, message: Message) -> None:
        recipient = self._endpoints.get(message.recipient)
        if recipient is None or message.recipient in self._crashed:
            self._drop(message, "recipient-down")
            return
        if self._cut(message.sender, message.recipient):
            self._drop(message, "partitioned-in-flight")
            return
        self._m_delivered.inc()
        self._h_delivery_delay.observe(self.sim.now - message.sent_at)
        self.trace.emit(
            self.sim.now,
            "net.deliver",
            message.recipient,
            sender=message.sender,
            kind=message.kind,
            msg_id=message.msg_id,
        )
        recipient.deliver(message)

    def _drop(self, message: Message, reason: str) -> None:
        self._m_dropped.inc()
        self.metrics.counter("net_drops", reason=reason).inc()
        self.trace.emit(
            self.sim.now,
            "net.drop",
            message.recipient,
            sender=message.sender,
            kind=message.kind,
            reason=reason,
            msg_id=message.msg_id,
        )
