"""The network fabric: endpoints, unicast/multicast, loss, partitions.

The fabric delivers messages between named :class:`Endpoint` objects with a
sampled one-way latency.  It implements the failure semantics the upper
layers need:

* **crashed endpoints** neither send nor receive (a crash while a message
  is in flight loses the message — delivery is re-checked at arrival time);
* **partitions** are *named, individually healable cuts*, optionally
  asymmetric (one-way: traffic ``side_a -> side_b`` blocked while the
  reverse direction flows) — messages across an active cut are dropped;
* an optional uniform **drop probability** models lossy links (the group
  layer adds reliability on top, as Ensemble does);
* **gray degradation**: a node or directed link can be degraded — latency
  multiplied and jitter added via :meth:`Network.latency_for` — so the
  target stays alive but slow, the paper's timing-failure regime;
* **link churn**: per-pair duplication/reordering knobs
  (:class:`LinkChurn`) deliver some messages twice or late, exercising
  the protocol's idempotency guards.

Per-pair latency overrides allow heterogeneous topologies (slow hosts/links,
as the paper's 300 MHz–1 GHz testbed had).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from typing import Any, Iterable, Optional

from repro.net.latency import DegradedLatency, LatencyModel
from repro.net.message import Message
from repro.net.node import Host
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NULL_TRACE, Trace


class NetworkError(RuntimeError):
    """Raised for fabric misuse (unknown endpoint, duplicate attach, ...)."""


@dataclass(frozen=True, slots=True)
class PartitionCut:
    """One named cut.  ``symmetric=False`` blocks only ``side_a -> side_b``."""

    name: str
    side_a: frozenset[str]
    side_b: frozenset[str]
    symmetric: bool = True

    def blocks(self, sender: str, recipient: str) -> bool:
        if sender in self.side_a and recipient in self.side_b:
            return True
        return (
            self.symmetric
            and sender in self.side_b
            and recipient in self.side_a
        )


@dataclass(frozen=True, slots=True)
class LinkChurn:
    """Duplication/reordering knobs for a (possibly wildcard) directed pair.

    ``duplicate_probability`` delivers a second copy of the message after
    an extra delay drawn from ``extra_delay``; ``reorder_probability``
    adds that extra delay to the *original* delivery, letting later sends
    overtake it.  Both are sampled from a dedicated ``net.churn`` stream,
    consumed only while churn is configured, so the fabric's RNG schedule
    is untouched when the knobs are off.
    """

    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    extra_delay: tuple[float, float] = (0.0005, 0.01)

    def __post_init__(self) -> None:
        for name in ("duplicate_probability", "reorder_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} {p!r} outside [0, 1]")
        low, high = self.extra_delay
        if low < 0 or high < low:
            raise ValueError(f"invalid extra_delay range [{low}, {high}]")


class Endpoint:
    """A named participant attached to a :class:`Network`.

    Subclasses override :meth:`deliver`.  ``send``/``multicast`` are
    convenience wrappers that go through the fabric.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("endpoint name must be non-empty")
        self.name = name
        self.network: Optional[Network] = None
        self.host: Optional[Host] = None

    # -- wiring --------------------------------------------------------
    def attached(self, network: "Network", host: Optional[Host]) -> None:
        """Called by the fabric on attach; override for setup hooks."""
        self.network = network
        self.host = host

    @property
    def sim(self) -> Simulator:
        if self.network is None:
            raise NetworkError(f"endpoint {self.name!r} is not attached")
        return self.network.sim

    @property
    def now(self) -> float:
        return self.sim.now

    # -- messaging -----------------------------------------------------
    def send(self, recipient: str, payload: Any, size_bytes: int = 256) -> Message:
        if self.network is None:
            raise NetworkError(f"endpoint {self.name!r} is not attached")
        return self.network.send(self.name, recipient, payload, size_bytes)

    def multicast(
        self, recipients: Iterable[str], payload: Any, size_bytes: int = 256
    ) -> list[Message]:
        if self.network is None:
            raise NetworkError(f"endpoint {self.name!r} is not attached")
        return self.network.multicast(self.name, recipients, payload, size_bytes)

    def deliver(self, message: Message) -> None:
        """Handle an arriving message.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Network:
    """Message fabric over a simulator."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        default_latency: LatencyModel,
        trace: Trace = NULL_TRACE,
        drop_probability: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop probability {drop_probability!r} outside [0, 1)")
        self.sim = sim
        self.rng = rng
        self.default_latency = default_latency
        self.trace = trace
        self.drop_probability = drop_probability
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._endpoints: dict[str, Endpoint] = {}
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], LatencyModel] = {}
        self._crashed: set[str] = set()
        self._partitions: dict[str, PartitionCut] = {}
        self._cut_ids = itertools.count(1)
        self._degraded_nodes: dict[str, tuple[float, float]] = {}
        self._degraded_links: dict[tuple[str, str], tuple[float, float]] = {}
        self._churn: dict[tuple[str, str], LinkChurn] = {}
        self._m_sent = self.metrics.counter("net_messages_sent")
        self._m_delivered = self.metrics.counter("net_messages_delivered")
        self._m_dropped = self.metrics.counter("net_messages_dropped")
        self._m_duplicated = self.metrics.counter("net_messages_duplicated")
        self._m_reordered = self.metrics.counter("net_messages_reordered")
        self._h_delivery_delay = self.metrics.histogram(
            "net_delivery_delay_seconds"
        )

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return self._m_sent.value

    @property
    def messages_delivered(self) -> int:
        return self._m_delivered.value

    @property
    def messages_dropped(self) -> int:
        return self._m_dropped.value

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, endpoint: Endpoint, host: Optional[Host] = None) -> None:
        if endpoint.name in self._endpoints:
            raise NetworkError(f"endpoint {endpoint.name!r} already attached")
        self._endpoints[endpoint.name] = endpoint
        if host is not None:
            self._hosts[endpoint.name] = host
        endpoint.attached(self, host)

    def detach(self, name: str) -> None:
        self._endpoints.pop(name, None)
        self._hosts.pop(name, None)
        self._crashed.discard(name)

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    def host_of(self, name: str) -> Optional[Host]:
        return self._hosts.get(name)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def set_link(self, sender: str, recipient: str, latency: LatencyModel) -> None:
        """Override latency for the directed pair ``sender -> recipient``."""
        self._links[(sender, recipient)] = latency

    def set_symmetric_link(self, a: str, b: str, latency: LatencyModel) -> None:
        self.set_link(a, b, latency)
        self.set_link(b, a, latency)

    def latency_for(self, sender: str, recipient: str) -> LatencyModel:
        base = self._links.get((sender, recipient), self.default_latency)
        if not self._degraded_nodes and not self._degraded_links:
            return base
        factor, jitter = 1.0, 0.0
        for entry in (
            self._degraded_nodes.get(sender),
            self._degraded_nodes.get(recipient),
            self._degraded_links.get((sender, recipient)),
        ):
            if entry is not None:
                factor *= entry[0]
                jitter += entry[1]
        if factor == 1.0 and jitter == 0.0:
            return base
        return DegradedLatency(base, factor, jitter)

    # ------------------------------------------------------------------
    # Gray degradation: alive but slow (timing failures, not crashes)
    # ------------------------------------------------------------------
    def degrade_node(
        self, name: str, factor: float = 1.0, jitter_s: float = 0.0
    ) -> None:
        """Slow every message to or from ``name`` (factor × + jitter).

        Degrading a node that is already degraded replaces the previous
        severity.  The endpoint keeps sending and receiving — this is a
        *gray* failure: membership heartbeats still flow, only late.
        """
        if name not in self._endpoints:
            raise NetworkError(f"unknown endpoint {name!r}")
        if factor < 1.0 or jitter_s < 0.0:
            raise ValueError(
                f"invalid degradation factor={factor!r} jitter={jitter_s!r}"
            )
        self._degraded_nodes[name] = (factor, jitter_s)
        self.trace.emit(
            self.sim.now, "net.degrade", name,
            factor=round(factor, 3), jitter=round(jitter_s, 5),
        )

    def restore_node(self, name: str) -> bool:
        """Undo :meth:`degrade_node`; returns False if it was not degraded."""
        if self._degraded_nodes.pop(name, None) is None:
            return False
        self.trace.emit(self.sim.now, "net.restore", name)
        return True

    def degrade_link(
        self, sender: str, recipient: str, factor: float = 1.0,
        jitter_s: float = 0.0,
    ) -> None:
        """Slow the directed link ``sender -> recipient`` only."""
        if factor < 1.0 or jitter_s < 0.0:
            raise ValueError(
                f"invalid degradation factor={factor!r} jitter={jitter_s!r}"
            )
        self._degraded_links[(sender, recipient)] = (factor, jitter_s)
        self.trace.emit(
            self.sim.now, "net.degrade-link", f"{sender}->{recipient}",
            factor=round(factor, 3), jitter=round(jitter_s, 5),
        )

    def restore_link(self, sender: str, recipient: str) -> bool:
        if self._degraded_links.pop((sender, recipient), None) is None:
            return False
        self.trace.emit(
            self.sim.now, "net.restore-link", f"{sender}->{recipient}"
        )
        return True

    def is_degraded(self, name: str) -> bool:
        return name in self._degraded_nodes

    def clear_degradations(self) -> None:
        for name in sorted(self._degraded_nodes):
            self.restore_node(name)
        for sender, recipient in sorted(self._degraded_links):
            self.restore_link(sender, recipient)

    # ------------------------------------------------------------------
    # Link churn: duplication and reordering
    # ------------------------------------------------------------------
    def set_churn(self, sender: str, recipient: str, churn: LinkChurn) -> None:
        """Install duplication/reordering on ``sender -> recipient``.

        Either side may be the wildcard ``"*"``; an exact pair match wins
        over ``(sender, "*")``, which wins over ``("*", recipient)``,
        which wins over ``("*", "*")``.
        """
        self._churn[(sender, recipient)] = churn

    def clear_churn(
        self, sender: Optional[str] = None, recipient: Optional[str] = None
    ) -> None:
        """Remove one churn entry, or all of them when called bare."""
        if sender is None and recipient is None:
            self._churn.clear()
            return
        self._churn.pop((sender, recipient), None)  # type: ignore[arg-type]

    def _churn_for(self, sender: str, recipient: str) -> Optional[LinkChurn]:
        for key in (
            (sender, recipient),
            (sender, "*"),
            ("*", recipient),
            ("*", "*"),
        ):
            churn = self._churn.get(key)
            if churn is not None:
                return churn
        return None

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def crash(self, name: str) -> bool:
        """Stop ``name`` from sending or receiving until :meth:`recover`.

        Idempotent: crashing an already-crashed endpoint is a no-op (no
        duplicate trace record) and returns ``False``; the first crash
        returns ``True``.  Unknown endpoints raise :class:`NetworkError`.
        """
        if name not in self._endpoints:
            raise NetworkError(f"unknown endpoint {name!r}")
        if name in self._crashed:
            return False
        self._crashed.add(name)
        self.trace.emit(self.sim.now, "net.crash", name)
        return True

    def recover(self, name: str) -> bool:
        """Let a crashed endpoint send and receive again.

        Idempotent: recovering an endpoint that is already up is a no-op
        (no duplicate trace record) and returns ``False``; a real
        transition returns ``True``.  Unknown endpoints raise
        :class:`NetworkError` — silently "recovering" a name that was
        never attached hid typos in failure scripts.
        """
        if name not in self._endpoints:
            raise NetworkError(f"unknown endpoint {name!r}")
        if name not in self._crashed:
            return False
        self._crashed.discard(name)
        self.trace.emit(self.sim.now, "net.recover", name)
        return True

    def is_up(self, name: str) -> bool:
        return name in self._endpoints and name not in self._crashed

    def partition(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        name: Optional[str] = None,
        symmetric: bool = True,
    ) -> str:
        """Install a named cut and return its name.

        ``symmetric=True`` blocks all traffic between the two sets;
        ``symmetric=False`` blocks only ``side_a -> side_b`` (a one-way
        gray partition: replies and heartbeats still flow back).  Cuts
        are healed individually by :meth:`heal_partition` or wholesale
        by :meth:`heal_partitions`.
        """
        if name is None:
            name = f"cut-{next(self._cut_ids)}"
        if name in self._partitions:
            raise NetworkError(f"partition {name!r} already active")
        cut = PartitionCut(name, frozenset(side_a), frozenset(side_b), symmetric)
        self._partitions[name] = cut
        self.trace.emit(
            self.sim.now,
            "net.partition",
            "network",
            name=name,
            symmetric=symmetric,
            side_a=sorted(cut.side_a),
            side_b=sorted(cut.side_b),
        )
        return name

    def heal_partition(self, name: str) -> bool:
        """Heal one named cut; returns False if it was not active."""
        if self._partitions.pop(name, None) is None:
            return False
        self.trace.emit(self.sim.now, "net.heal", "network", name=name)
        return True

    def heal_partitions(self) -> None:
        self._partitions.clear()
        self.trace.emit(self.sim.now, "net.heal", "network")

    def active_partitions(self) -> list[str]:
        return sorted(self._partitions)

    def _cut(self, sender: str, recipient: str) -> bool:
        for cut in self._partitions.values():
            if cut.blocks(sender, recipient):
                return True
        return False

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self, sender: str, recipient: str, payload: Any, size_bytes: int = 256
    ) -> Message:
        if sender not in self._endpoints:
            raise NetworkError(f"unknown sender {sender!r}")
        message = Message(sender, recipient, payload, self.sim.now, size_bytes)
        self._m_sent.inc()
        if sender in self._crashed:
            self._drop(message, "sender-crashed")
            return message
        if recipient not in self._endpoints:
            self._drop(message, "unknown-recipient")
            return message
        if self._cut(sender, recipient):
            self._drop(message, "partitioned")
            return message
        if self.drop_probability > 0.0:
            if self.rng.stream("net.loss").random() < self.drop_probability:
                self._drop(message, "random-loss")
                return message
        link_rng = self.rng.stream(f"net.link.{sender}->{recipient}")
        delay = self.latency_for(sender, recipient).delay(message, link_rng)
        if self._churn:
            churn = self._churn_for(sender, recipient)
            if churn is not None:
                crng = self.rng.stream("net.churn")
                if (
                    churn.reorder_probability > 0.0
                    and crng.random() < churn.reorder_probability
                ):
                    delay += crng.uniform(*churn.extra_delay)
                    self._m_reordered.inc()
                if (
                    churn.duplicate_probability > 0.0
                    and crng.random() < churn.duplicate_probability
                ):
                    self._m_duplicated.inc()
                    self.sim.schedule(
                        delay + crng.uniform(*churn.extra_delay),
                        self._arrive,
                        message,
                    )
        self.sim.schedule(delay, self._arrive, message)
        return message

    def multicast(
        self,
        sender: str,
        recipients: Iterable[str],
        payload: Any,
        size_bytes: int = 256,
    ) -> list[Message]:
        """Independent unicasts to each recipient (excluding the sender)."""
        return [
            self.send(sender, recipient, payload, size_bytes)
            for recipient in recipients
            if recipient != sender
        ]

    def _arrive(self, message: Message) -> None:
        recipient = self._endpoints.get(message.recipient)
        if recipient is None or message.recipient in self._crashed:
            self._drop(message, "recipient-down")
            return
        if self._cut(message.sender, message.recipient):
            self._drop(message, "partitioned-in-flight")
            return
        self._m_delivered.inc()
        self._h_delivery_delay.observe(self.sim.now - message.sent_at)
        self.trace.emit(
            self.sim.now,
            "net.deliver",
            message.recipient,
            sender=message.sender,
            kind=message.kind,
            msg_id=message.msg_id,
        )
        recipient.deliver(message)

    def _drop(self, message: Message, reason: str) -> None:
        self._m_dropped.inc()
        self.metrics.counter("net_drops", reason=reason).inc()
        self.trace.emit(
            self.sim.now,
            "net.drop",
            message.recipient,
            sender=message.sender,
            kind=message.kind,
            reason=reason,
            msg_id=message.msg_id,
        )
