"""Seeded chaos campaigns over the network fabric.

The :class:`ChaosEngine` turns the point primitives of
:class:`~repro.net.failures.FailureInjector` — crash/recover, partition/
heal, host overload, lossy links — into a *randomized but reproducible*
fault schedule: every decision (what to break, when, for how long) is drawn
from one ``random.Random`` stream, so a campaign is a pure function of its
seed and the fleet can replay any failing run bit-for-bit.

The engine is deliberately service-agnostic: it knows endpoint *names*
(via :class:`ChaosTargets`), not protocol roles.  Recovery of a crashed
endpoint is delegated to an optional ``repair`` callback so the service
layer can run its own rejoin protocol (state transfer, re-registration);
without one the engine just flips the fabric state back.

Safety constraints keep campaigns *survivable* rather than merely random:

* ``protected`` endpoints are never faulted (keep one serving replica and
  the invariant-checking ground truth alive);
* at most ``max_concurrent_down`` endpoints are crashed at once;
* a crash is skipped when it would leave no live serving primary;
* one partition and one loss window at a time (the fabric heals
  partitions wholesale, so overlapping cuts cannot be unwound safely).

At ``duration`` the engine stops injecting and heals the world: active
partitions are cleared, the loss probability is restored, and every
endpoint it crashed is recovered through the repair callback.  Everything
is recorded in :attr:`ChaosEngine.events` and traced as ``chaos.*`` for
the invariant checkers in :mod:`repro.experiments.chaos`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.network import Network
from repro.obs.metrics import MetricsRegistry
from repro.sim.tracing import NULL_TRACE, Trace


@dataclass(frozen=True)
class ChaosTargets:
    """The endpoints a campaign may fault, by (service-assigned) role.

    ``primaries`` are the serving primaries — the engine guarantees at
    least one stays live.  ``sequencer`` and ``membership`` are optional
    singletons; crashing them exercises failover and detector-outage
    paths.  ``protected`` names are never faulted regardless of which
    other field lists them.
    """

    primaries: tuple[str, ...]
    secondaries: tuple[str, ...] = ()
    sequencer: Optional[str] = None
    membership: Optional[str] = None
    protected: tuple[str, ...] = ()

    def crashable(self) -> list[str]:
        names = list(self.primaries) + list(self.secondaries)
        if self.sequencer is not None:
            names.append(self.sequencer)
        return [n for n in names if n not in self.protected]


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one campaign: intensity, fault mix, and window sizes."""

    duration: float = 30.0
    mean_interval: float = 1.5  # exponential gap between injections
    crash_weight: float = 4.0
    partition_weight: float = 1.0
    overload_weight: float = 2.0
    loss_weight: float = 1.0
    membership_outage_weight: float = 0.0
    # Traffic bursts: requires a rate controller shared with the workload
    # generators (see ChaosEngine's ``rate_controller``); default-off so
    # existing campaigns keep their exact fault schedules.
    load_storm_weight: float = 0.0
    max_concurrent_down: int = 2
    downtime: tuple[float, float] = (0.8, 3.0)
    partition_window: tuple[float, float] = (0.5, 2.0)
    overload_window: tuple[float, float] = (0.5, 2.0)
    overload_factor: tuple[float, float] = (2.0, 8.0)
    loss_window: tuple[float, float] = (0.5, 2.0)
    loss_probability: tuple[float, float] = (0.02, 0.15)
    storm_window: tuple[float, float] = (1.0, 3.0)
    storm_factor: tuple[float, float] = (3.0, 10.0)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("campaign duration must be positive")
        if self.mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if self.max_concurrent_down < 1:
            raise ValueError("max_concurrent_down must be >= 1")
        for name in (
            "crash_weight",
            "partition_weight",
            "overload_weight",
            "loss_weight",
            "membership_outage_weight",
            "load_storm_weight",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in (
            "downtime",
            "partition_window",
            "overload_window",
            "overload_factor",
            "loss_window",
            "loss_probability",
            "storm_window",
            "storm_factor",
        ):
            low, high = getattr(self, name)
            if low <= 0 or high < low:
                raise ValueError(f"invalid {name} range [{low}, {high}]")


@dataclass
class ChaosEvent:
    """One injected fault, for reports and failure forensics."""

    time: float
    kind: str
    target: str
    until: Optional[float] = None
    detail: dict = field(default_factory=dict)


class ChaosEngine:
    """Drives one seeded fault campaign on a simulated network."""

    def __init__(
        self,
        network: Network,
        targets: ChaosTargets,
        config: Optional[ChaosConfig] = None,
        rng: Optional[random.Random] = None,
        repair: Optional[Callable[[str], None]] = None,
        trace: Trace = NULL_TRACE,
        metrics: Optional[MetricsRegistry] = None,
        rate_controller: Optional[object] = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.targets = targets
        self.config = config or ChaosConfig()
        self.rng = rng or random.Random(0)
        self.repair = repair
        self.trace = trace
        # Duck-typed (begin_storm/end_storm) so the network layer does not
        # import the workload generators; see ArrivalRateController.
        self.rate_controller = rate_controller
        self.events: list[ChaosEvent] = []
        self._down: set[str] = set()
        self._partition_active = False
        self._loss_active = False
        self._storm_active = False
        self._base_drop = network.drop_probability
        self._started_at: Optional[float] = None
        self._stopped = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_faults_injected = self.metrics.counter("chaos_faults_injected")
        self._m_faults_skipped = self.metrics.counter("chaos_faults_skipped")

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        return self._m_faults_injected.value

    @property
    def faults_skipped(self) -> int:
        return self._m_faults_skipped.value

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("chaos campaign already started")
        self._started_at = self.sim.now
        self.trace.emit(self.sim.now, "chaos.start", "chaos")
        self.sim.schedule(self._next_gap(), self._tick)
        self.sim.schedule(self.config.duration, self._finish)

    @property
    def finished(self) -> bool:
        return self._stopped

    def _next_gap(self) -> float:
        return self.rng.expovariate(1.0 / self.config.mean_interval)

    def _tick(self) -> None:
        if self._stopped:
            return
        assert self._started_at is not None
        if self.sim.now - self._started_at >= self.config.duration:
            return
        if self._inject():
            self._m_faults_injected.inc()
        else:
            self._m_faults_skipped.inc()
        self.sim.schedule(self._next_gap(), self._tick)

    def _finish(self) -> None:
        """Stop injecting and heal the world (end of campaign)."""
        if self._stopped:
            return
        self._stopped = True
        if self._partition_active:
            self._heal_partition()
        if self._loss_active:
            self._end_loss()
        if self._storm_active:
            self._end_storm()
        for name in sorted(self._down):
            self._recover(name)
        self.trace.emit(
            self.sim.now, "chaos.end", "chaos",
            injected=self.faults_injected, skipped=self.faults_skipped,
        )

    # ------------------------------------------------------------------
    # Fault selection and injection
    # ------------------------------------------------------------------
    def _inject(self) -> bool:
        cfg = self.config
        choices: list[tuple[str, float]] = [
            ("crash", cfg.crash_weight),
            ("partition", cfg.partition_weight),
            ("overload", cfg.overload_weight),
            ("loss", cfg.loss_weight),
        ]
        if self.targets.membership is not None:
            choices.append(("membership", cfg.membership_outage_weight))
        if self.rate_controller is not None:
            choices.append(("load_storm", cfg.load_storm_weight))
        kinds = [k for k, w in choices if w > 0]
        weights = [w for _, w in choices if w > 0]
        if not kinds:
            return False
        kind = self.rng.choices(kinds, weights=weights, k=1)[0]
        return {
            "crash": self._inject_crash,
            "partition": self._inject_partition,
            "overload": self._inject_overload,
            "loss": self._inject_loss,
            "membership": self._inject_membership_outage,
            "load_storm": self._inject_load_storm,
        }[kind]()

    def _record(self, event: ChaosEvent) -> None:
        self.events.append(event)
        self.trace.emit(
            event.time, f"chaos.{event.kind}", event.target,
            until=event.until, **event.detail,
        )

    def _live_primary_count(self) -> int:
        return sum(
            1 for name in self.targets.primaries if self.network.is_up(name)
        )

    def _crash_candidates(self) -> list[str]:
        if len(self._down) >= self.config.max_concurrent_down:
            return []
        candidates = []
        for name in self.targets.crashable():
            if name in self._down or not self.network.is_up(name):
                continue
            if name in self.targets.primaries and self._live_primary_count() <= 1:
                continue  # never kill the last serving primary
            candidates.append(name)
        return candidates

    def _inject_crash(self) -> bool:
        candidates = self._crash_candidates()
        if not candidates:
            return False
        victim = self.rng.choice(candidates)
        if not self.network.crash(victim):
            return False
        self._down.add(victim)
        downtime = self.rng.uniform(*self.config.downtime)
        self._record(
            ChaosEvent(self.sim.now, "crash", victim, until=self.sim.now + downtime)
        )
        self.sim.schedule(downtime, self._recover, victim)
        return True

    def _recover(self, name: str) -> None:
        if name not in self._down:
            return
        self._down.discard(name)
        self._record(ChaosEvent(self.sim.now, "recover", name))
        if self.repair is not None:
            self.repair(name)
        else:
            self.network.recover(name)

    def _inject_partition(self) -> bool:
        if self._partition_active:
            return False
        # Cut a small minority of unprotected replicas off from the rest
        # of the world (including the membership service, so heartbeat
        # loss and eviction are part of the exercised behaviour).
        pool = [n for n in self.targets.crashable() if n not in self._down]
        if len(pool) < 2:
            return False
        size = self.rng.randint(1, max(1, len(pool) // 3))
        minority = set(self.rng.sample(pool, size))
        majority = [e for e in self.network.endpoints() if e not in minority]
        self._partition_active = True
        self.network.partition(sorted(minority), majority)
        window = self.rng.uniform(*self.config.partition_window)
        self._record(
            ChaosEvent(
                self.sim.now, "partition", "+".join(sorted(minority)),
                until=self.sim.now + window,
                detail={"minority": sorted(minority)},
            )
        )
        self.sim.schedule(window, self._heal_partition)
        return True

    def _heal_partition(self) -> None:
        if not self._partition_active:
            return
        self._partition_active = False
        self.network.heal_partitions()
        self._record(ChaosEvent(self.sim.now, "heal", "network"))

    def _inject_overload(self) -> bool:
        pool = [
            n
            for n in (*self.targets.primaries, *self.targets.secondaries)
            if n not in self.targets.protected
            and self.network.host_of(n) is not None
        ]
        if not pool:
            return False
        victim = self.rng.choice(pool)
        host = self.network.host_of(victim)
        assert host is not None
        factor = self.rng.uniform(*self.config.overload_factor)
        window = self.rng.uniform(*self.config.overload_window)
        host.begin_overload(factor)
        self.sim.schedule(window, host.end_overload)
        self._record(
            ChaosEvent(
                self.sim.now, "overload", victim,
                until=self.sim.now + window, detail={"factor": round(factor, 2)},
            )
        )
        return True

    def _inject_loss(self) -> bool:
        if self._loss_active:
            return False
        probability = self.rng.uniform(*self.config.loss_probability)
        window = self.rng.uniform(*self.config.loss_window)
        self._loss_active = True
        self.network.drop_probability = probability
        self.sim.schedule(window, self._end_loss)
        self._record(
            ChaosEvent(
                self.sim.now, "loss", "network",
                until=self.sim.now + window,
                detail={"probability": round(probability, 4)},
            )
        )
        return True

    def _end_loss(self) -> None:
        if not self._loss_active:
            return
        self._loss_active = False
        self.network.drop_probability = self._base_drop
        self._record(ChaosEvent(self.sim.now, "loss-end", "network"))

    def _inject_load_storm(self) -> bool:
        if self.rate_controller is None or self._storm_active:
            return False
        factor = self.rng.uniform(*self.config.storm_factor)
        window = self.rng.uniform(*self.config.storm_window)
        self._storm_active = True
        self.rate_controller.begin_storm(factor)
        self.sim.schedule(window, self._end_storm)
        self._record(
            ChaosEvent(
                self.sim.now, "load-storm", "workload",
                until=self.sim.now + window, detail={"factor": round(factor, 2)},
            )
        )
        return True

    def _end_storm(self) -> None:
        if not self._storm_active:
            return
        self._storm_active = False
        assert self.rate_controller is not None
        self.rate_controller.end_storm()
        self._record(ChaosEvent(self.sim.now, "storm-end", "workload"))

    def _inject_membership_outage(self) -> bool:
        name = self.targets.membership
        if name is None or name in self._down:
            return False
        if len(self._down) >= self.config.max_concurrent_down:
            return False
        if not self.network.crash(name):
            return False
        self._down.add(name)
        downtime = self.rng.uniform(*self.config.downtime)
        self._record(
            ChaosEvent(
                self.sim.now, "membership-outage", name,
                until=self.sim.now + downtime,
            )
        )
        self.sim.schedule(downtime, self._recover, name)
        return True
