"""Seeded chaos campaigns over the network fabric.

The :class:`ChaosEngine` turns the point primitives of
:class:`~repro.net.failures.FailureInjector` — crash/recover, partition/
heal, host overload, lossy links — into a *randomized but reproducible*
fault schedule: every decision (what to break, when, for how long) is drawn
from one ``random.Random`` stream, so a campaign is a pure function of its
seed and the fleet can replay any failing run bit-for-bit.

The engine is deliberately service-agnostic: it knows endpoint *names*
(via :class:`ChaosTargets`), not protocol roles.  Recovery of a crashed
endpoint is delegated to an optional ``repair`` callback so the service
layer can run its own rejoin protocol (state transfer, re-registration);
without one the engine just flips the fabric state back.

Safety constraints keep campaigns *survivable* rather than merely random:

* ``protected`` endpoints are never faulted (keep one serving replica and
  the invariant-checking ground truth alive);
* at most ``max_concurrent_down`` endpoints are crashed at once;
* a crash is skipped when it would leave no live serving primary;
* at most ``max_concurrent_partitions`` cuts at once (each cut is a
  *named* fabric partition and heals individually, so overlapping cuts
  unwind safely); loss windows may overlap freely — the effective drop
  probability is the max of the active windows.

Beyond the binary faults, a *gray* family models the paper's timing
failures — replicas that stay alive but miss deadlines:

* ``slow_node`` — degrade every link to/from a victim (latency × factor
  plus added jitter);
* ``flapping_link`` — periodically cut and restore a victim's
  connectivity inside one fault window;
* ``oneway_partition`` — an asymmetric cut: the minority's outbound (or
  inbound, coin-flip) traffic is dropped while the reverse flows;
* ``dup_storm`` — duplication/reordering churn on a victim's links.

Every gray injection appends a ground-truth :class:`GrayFault`
(target, start, end, severity) to :attr:`ChaosEngine.gray_schedule`, the
join key for the detection-quality scorer in :mod:`repro.obs.detection`.
All gray weights default to 0.0 so existing campaigns keep their exact
fault schedules.

At ``duration`` the engine stops injecting and heals the world: active
cuts are cleared, degradations and churn removed, the loss probability
restored, and every endpoint it crashed is recovered through the repair
callback.  Everything is recorded in :attr:`ChaosEngine.events` and
traced as ``chaos.*`` for the invariant checkers in
:mod:`repro.experiments.chaos`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.network import LinkChurn, Network
from repro.obs.metrics import MetricsRegistry
from repro.sim.tracing import NULL_TRACE, Trace


@dataclass(frozen=True)
class ChaosTargets:
    """The endpoints a campaign may fault, by (service-assigned) role.

    ``primaries`` are the serving primaries — the engine guarantees at
    least one stays live.  ``sequencer`` and ``membership`` are optional
    singletons; crashing them exercises failover and detector-outage
    paths.  ``protected`` names are never faulted regardless of which
    other field lists them.
    """

    primaries: tuple[str, ...]
    secondaries: tuple[str, ...] = ()
    sequencer: Optional[str] = None
    membership: Optional[str] = None
    protected: tuple[str, ...] = ()

    def crashable(self) -> list[str]:
        names = list(self.primaries) + list(self.secondaries)
        if self.sequencer is not None:
            names.append(self.sequencer)
        return [n for n in names if n not in self.protected]


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one campaign: intensity, fault mix, and window sizes."""

    duration: float = 30.0
    mean_interval: float = 1.5  # exponential gap between injections
    crash_weight: float = 4.0
    partition_weight: float = 1.0
    overload_weight: float = 2.0
    loss_weight: float = 1.0
    membership_outage_weight: float = 0.0
    # Traffic bursts: requires a rate controller shared with the workload
    # generators (see ChaosEngine's ``rate_controller``); default-off so
    # existing campaigns keep their exact fault schedules.
    load_storm_weight: float = 0.0
    # Gray-fault family (timing failures): all default-off for the same
    # reason — a zero weight never enters the choice distribution, so
    # existing seeds replay bit-identically.
    slow_node_weight: float = 0.0
    flapping_link_weight: float = 0.0
    oneway_partition_weight: float = 0.0
    dup_storm_weight: float = 0.0
    max_concurrent_down: int = 2
    max_concurrent_partitions: int = 2
    downtime: tuple[float, float] = (0.8, 3.0)
    partition_window: tuple[float, float] = (0.5, 2.0)
    overload_window: tuple[float, float] = (0.5, 2.0)
    overload_factor: tuple[float, float] = (2.0, 8.0)
    loss_window: tuple[float, float] = (0.5, 2.0)
    loss_probability: tuple[float, float] = (0.02, 0.15)
    storm_window: tuple[float, float] = (1.0, 3.0)
    storm_factor: tuple[float, float] = (3.0, 10.0)
    slow_window: tuple[float, float] = (1.0, 3.0)
    slow_factor: tuple[float, float] = (2.0, 6.0)
    slow_jitter: tuple[float, float] = (0.01, 0.05)
    flap_window: tuple[float, float] = (1.0, 2.5)
    flap_period: tuple[float, float] = (0.08, 0.3)
    dup_window: tuple[float, float] = (0.5, 2.0)
    dup_probability: tuple[float, float] = (0.1, 0.4)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("campaign duration must be positive")
        if self.mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if self.max_concurrent_down < 1:
            raise ValueError("max_concurrent_down must be >= 1")
        if self.max_concurrent_partitions < 1:
            raise ValueError("max_concurrent_partitions must be >= 1")
        for name in (
            "crash_weight",
            "partition_weight",
            "overload_weight",
            "loss_weight",
            "membership_outage_weight",
            "load_storm_weight",
            "slow_node_weight",
            "flapping_link_weight",
            "oneway_partition_weight",
            "dup_storm_weight",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in (
            "downtime",
            "partition_window",
            "overload_window",
            "overload_factor",
            "loss_window",
            "loss_probability",
            "storm_window",
            "storm_factor",
            "slow_window",
            "slow_factor",
            "slow_jitter",
            "flap_window",
            "flap_period",
            "dup_window",
            "dup_probability",
        ):
            low, high = getattr(self, name)
            if low <= 0 or high < low:
                raise ValueError(f"invalid {name} range [{low}, {high}]")
        low, high = self.dup_probability
        if high > 1.0:
            raise ValueError(f"dup_probability upper bound {high} exceeds 1")
        if self.slow_factor[0] < 1.0:
            # A factor below 1 would *speed up* the victim; degrade_node
            # rejects it, so fail at config time instead of mid-campaign.
            raise ValueError(
                f"slow_factor lower bound {self.slow_factor[0]} below 1"
            )


@dataclass
class ChaosEvent:
    """One injected fault, for reports and failure forensics."""

    time: float
    kind: str
    target: str
    until: Optional[float] = None
    detail: dict = field(default_factory=dict)


@dataclass
class GrayFault:
    """Ground truth for one gray fault: who was degraded, when, how hard.

    ``end`` starts as the *planned* heal time and is clamped to the
    actual heal time if the campaign ends early.  ``severity`` is
    kind-specific: the latency factor for ``slow_node``, the flap period
    for ``flapping_link``, 1.0 for ``oneway_partition``, the duplication
    probability for ``dup_storm``.  The detection scorer joins suspicion
    transitions against these records by ``target`` and time window.
    """

    kind: str
    target: str
    start: float
    end: float
    severity: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "severity": round(self.severity, 4),
        }


class ChaosEngine:
    """Drives one seeded fault campaign on a simulated network."""

    def __init__(
        self,
        network: Network,
        targets: ChaosTargets,
        config: Optional[ChaosConfig] = None,
        rng: Optional[random.Random] = None,
        repair: Optional[Callable[[str], None]] = None,
        trace: Trace = NULL_TRACE,
        metrics: Optional[MetricsRegistry] = None,
        rate_controller: Optional[object] = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.targets = targets
        self.config = config or ChaosConfig()
        self.rng = rng or random.Random(0)
        self.repair = repair
        self.trace = trace
        # Duck-typed (begin_storm/end_storm) so the network layer does not
        # import the workload generators; see ArrivalRateController.
        self.rate_controller = rate_controller
        self.events: list[ChaosEvent] = []
        self.gray_schedule: list[GrayFault] = []
        self._down: set[str] = set()
        self._cuts: set[str] = set()
        self._loss_windows: dict[int, float] = {}
        self._loss_token = 0
        self._storm_active = False
        self._degraded: set[str] = set()
        self._flapping: dict[str, float] = {}  # victim -> window end
        self._flap_cuts: dict[str, str] = {}  # victim -> active cut name
        self._dup_victims: set[str] = set()
        self._base_drop = network.drop_probability
        self._started_at: Optional[float] = None
        self._stopped = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_faults_injected = self.metrics.counter("chaos_faults_injected")
        self._m_faults_skipped = self.metrics.counter("chaos_faults_skipped")

    # ------------------------------------------------------------------
    # Registry-backed counters under their historical names
    # ------------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        return self._m_faults_injected.value

    @property
    def faults_skipped(self) -> int:
        return self._m_faults_skipped.value

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("chaos campaign already started")
        self._started_at = self.sim.now
        self.trace.emit(self.sim.now, "chaos.start", "chaos")
        self.sim.schedule(self._next_gap(), self._tick)
        self.sim.schedule(self.config.duration, self._finish)

    @property
    def finished(self) -> bool:
        return self._stopped

    def _next_gap(self) -> float:
        return self.rng.expovariate(1.0 / self.config.mean_interval)

    def _tick(self) -> None:
        if self._stopped:
            return
        assert self._started_at is not None
        if self.sim.now - self._started_at >= self.config.duration:
            return
        if self._inject():
            self._m_faults_injected.inc()
        else:
            self._m_faults_skipped.inc()
        self.sim.schedule(self._next_gap(), self._tick)

    def _finish(self) -> None:
        """Stop injecting and heal the world (end of campaign)."""
        if self._stopped:
            return
        self._stopped = True
        for name in sorted(self._cuts):
            self._heal_cut(name)
        for token in sorted(self._loss_windows):
            self._end_loss(token)
        if self._storm_active:
            self._end_storm()
        for victim in sorted(self._degraded):
            self._end_slow_node(victim)
        for victim in sorted(self._flapping):
            self._end_flap(victim)
        for victim in sorted(self._dup_victims):
            self._end_dup_storm(victim)
        for name in sorted(self._down):
            self._recover(name)
        # Clamp ground-truth windows that out-lived the campaign.
        for fault in self.gray_schedule:
            if fault.end > self.sim.now:
                fault.end = self.sim.now
        self.trace.emit(
            self.sim.now, "chaos.end", "chaos",
            injected=self.faults_injected, skipped=self.faults_skipped,
        )

    # ------------------------------------------------------------------
    # Fault selection and injection
    # ------------------------------------------------------------------
    def _inject(self) -> bool:
        cfg = self.config
        choices: list[tuple[str, float]] = [
            ("crash", cfg.crash_weight),
            ("partition", cfg.partition_weight),
            ("overload", cfg.overload_weight),
            ("loss", cfg.loss_weight),
        ]
        if self.targets.membership is not None:
            choices.append(("membership", cfg.membership_outage_weight))
        if self.rate_controller is not None:
            choices.append(("load_storm", cfg.load_storm_weight))
        choices.extend(
            [
                ("slow_node", cfg.slow_node_weight),
                ("flapping_link", cfg.flapping_link_weight),
                ("oneway_partition", cfg.oneway_partition_weight),
                ("dup_storm", cfg.dup_storm_weight),
            ]
        )
        kinds = [k for k, w in choices if w > 0]
        weights = [w for _, w in choices if w > 0]
        if not kinds:
            return False
        kind = self.rng.choices(kinds, weights=weights, k=1)[0]
        return {
            "crash": self._inject_crash,
            "partition": self._inject_partition,
            "overload": self._inject_overload,
            "loss": self._inject_loss,
            "membership": self._inject_membership_outage,
            "load_storm": self._inject_load_storm,
            "slow_node": self._inject_slow_node,
            "flapping_link": self._inject_flapping_link,
            "oneway_partition": self._inject_oneway_partition,
            "dup_storm": self._inject_dup_storm,
        }[kind]()

    def _record(self, event: ChaosEvent) -> None:
        self.events.append(event)
        self.trace.emit(
            event.time, f"chaos.{event.kind}", event.target,
            until=event.until, **event.detail,
        )

    def _live_primary_count(self) -> int:
        return sum(
            1 for name in self.targets.primaries if self.network.is_up(name)
        )

    def _crash_candidates(self) -> list[str]:
        if len(self._down) >= self.config.max_concurrent_down:
            return []
        candidates = []
        for name in self.targets.crashable():
            if name in self._down or not self.network.is_up(name):
                continue
            if name in self.targets.primaries and self._live_primary_count() <= 1:
                continue  # never kill the last serving primary
            candidates.append(name)
        return candidates

    def _inject_crash(self) -> bool:
        candidates = self._crash_candidates()
        if not candidates:
            return False
        victim = self.rng.choice(candidates)
        if not self.network.crash(victim):
            return False
        self._down.add(victim)
        downtime = self.rng.uniform(*self.config.downtime)
        self._record(
            ChaosEvent(self.sim.now, "crash", victim, until=self.sim.now + downtime)
        )
        self.sim.schedule(downtime, self._recover, victim)
        return True

    def _recover(self, name: str) -> None:
        if name not in self._down:
            return
        self._down.discard(name)
        self._record(ChaosEvent(self.sim.now, "recover", name))
        if self.repair is not None:
            self.repair(name)
        else:
            self.network.recover(name)

    def _pick_minority(self) -> Optional[tuple[set[str], list[str]]]:
        """A small minority of unprotected replicas vs the rest of the world
        (including the membership service, so heartbeat loss and eviction
        are part of the exercised behaviour)."""
        pool = [n for n in self.targets.crashable() if n not in self._down]
        if len(pool) < 2:
            return None
        size = self.rng.randint(1, max(1, len(pool) // 3))
        minority = set(self.rng.sample(pool, size))
        majority = [e for e in self.network.endpoints() if e not in minority]
        return minority, majority

    def _inject_partition(self) -> bool:
        if len(self._cuts) >= self.config.max_concurrent_partitions:
            return False
        picked = self._pick_minority()
        if picked is None:
            return False
        minority, majority = picked
        name = self.network.partition(sorted(minority), majority)
        self._cuts.add(name)
        window = self.rng.uniform(*self.config.partition_window)
        self._record(
            ChaosEvent(
                self.sim.now, "partition", "+".join(sorted(minority)),
                until=self.sim.now + window,
                detail={"minority": sorted(minority), "cut": name},
            )
        )
        self.sim.schedule(window, self._heal_cut, name)
        return True

    def _heal_cut(self, name: str) -> None:
        if name not in self._cuts:
            return
        self._cuts.discard(name)
        self.network.heal_partition(name)
        self._record(
            ChaosEvent(self.sim.now, "heal", "network", detail={"cut": name})
        )

    def _inject_overload(self) -> bool:
        pool = [
            n
            for n in (*self.targets.primaries, *self.targets.secondaries)
            if n not in self.targets.protected
            and self.network.host_of(n) is not None
        ]
        if not pool:
            return False
        victim = self.rng.choice(pool)
        host = self.network.host_of(victim)
        assert host is not None
        factor = self.rng.uniform(*self.config.overload_factor)
        window = self.rng.uniform(*self.config.overload_window)
        host.begin_overload(factor)
        self.sim.schedule(window, host.end_overload)
        self._record(
            ChaosEvent(
                self.sim.now, "overload", victim,
                until=self.sim.now + window, detail={"factor": round(factor, 2)},
            )
        )
        return True

    def _inject_loss(self) -> bool:
        probability = self.rng.uniform(*self.config.loss_probability)
        window = self.rng.uniform(*self.config.loss_window)
        token = self._loss_token
        self._loss_token += 1
        self._loss_windows[token] = probability
        self._apply_loss()
        self.sim.schedule(window, self._end_loss, token)
        self._record(
            ChaosEvent(
                self.sim.now, "loss", "network",
                until=self.sim.now + window,
                detail={"probability": round(probability, 4)},
            )
        )
        return True

    def _apply_loss(self) -> None:
        """Overlapping loss windows compose as the max drop probability."""
        if self._loss_windows:
            self.network.drop_probability = max(
                self._base_drop, *self._loss_windows.values()
            )
        else:
            self.network.drop_probability = self._base_drop

    def _end_loss(self, token: int) -> None:
        if self._loss_windows.pop(token, None) is None:
            return
        self._apply_loss()
        self._record(ChaosEvent(self.sim.now, "loss-end", "network"))

    def _inject_load_storm(self) -> bool:
        if self.rate_controller is None or self._storm_active:
            return False
        factor = self.rng.uniform(*self.config.storm_factor)
        window = self.rng.uniform(*self.config.storm_window)
        self._storm_active = True
        self.rate_controller.begin_storm(factor)
        self.sim.schedule(window, self._end_storm)
        self._record(
            ChaosEvent(
                self.sim.now, "load-storm", "workload",
                until=self.sim.now + window, detail={"factor": round(factor, 2)},
            )
        )
        return True

    def _end_storm(self) -> None:
        if not self._storm_active:
            return
        self._storm_active = False
        assert self.rate_controller is not None
        self.rate_controller.end_storm()
        self._record(ChaosEvent(self.sim.now, "storm-end", "workload"))

    def _inject_membership_outage(self) -> bool:
        name = self.targets.membership
        if name is None or name in self._down:
            return False
        if len(self._down) >= self.config.max_concurrent_down:
            return False
        if not self.network.crash(name):
            return False
        self._down.add(name)
        downtime = self.rng.uniform(*self.config.downtime)
        self._record(
            ChaosEvent(
                self.sim.now, "membership-outage", name,
                until=self.sim.now + downtime,
            )
        )
        self.sim.schedule(downtime, self._recover, name)
        return True

    # ------------------------------------------------------------------
    # Gray faults: alive but slow (the paper's timing-failure regime)
    # ------------------------------------------------------------------
    def _serving_pool(self, busy: set[str]) -> list[str]:
        """Serving replicas a gray fault may hit: not protected, not
        crashed, not already carrying the same gray fault kind."""
        return [
            n
            for n in (*self.targets.primaries, *self.targets.secondaries)
            if n not in self.targets.protected
            and n not in self._down
            and n not in busy
            and self.network.is_up(n)
        ]

    def _gray_fault(
        self, kind: str, target: str, window: float, severity: float
    ) -> GrayFault:
        fault = GrayFault(
            kind, target, self.sim.now, self.sim.now + window, severity
        )
        self.gray_schedule.append(fault)
        return fault

    def _inject_slow_node(self) -> bool:
        pool = self._serving_pool(self._degraded)
        if not pool:
            return False
        victim = self.rng.choice(pool)
        factor = self.rng.uniform(*self.config.slow_factor)
        jitter = self.rng.uniform(*self.config.slow_jitter)
        window = self.rng.uniform(*self.config.slow_window)
        self._degraded.add(victim)
        self.network.degrade_node(victim, factor, jitter)
        self._gray_fault("slow_node", victim, window, factor)
        self._record(
            ChaosEvent(
                self.sim.now, "slow-node", victim,
                until=self.sim.now + window,
                detail={"factor": round(factor, 2), "jitter": round(jitter, 4)},
            )
        )
        self.sim.schedule(window, self._end_slow_node, victim)
        return True

    def _end_slow_node(self, victim: str) -> None:
        if victim not in self._degraded:
            return
        self._degraded.discard(victim)
        self.network.restore_node(victim)
        self._record(ChaosEvent(self.sim.now, "slow-node-end", victim))

    def _inject_flapping_link(self) -> bool:
        pool = self._serving_pool(set(self._flapping))
        if not pool:
            return False
        victim = self.rng.choice(pool)
        window = self.rng.uniform(*self.config.flap_window)
        period = self.rng.uniform(*self.config.flap_period)
        self._flapping[victim] = self.sim.now + window
        self._gray_fault("flapping_link", victim, window, period)
        self._record(
            ChaosEvent(
                self.sim.now, "flapping-link", victim,
                until=self.sim.now + window,
                detail={"period": round(period, 3)},
            )
        )
        self._flap_toggle(victim, period)
        return True

    def _flap_toggle(self, victim: str, period: float) -> None:
        """Alternate the victim between cut-off and connected every half
        period until its window expires."""
        until = self._flapping.get(victim)
        if until is None:
            return
        if self.sim.now >= until:
            self._end_flap(victim)
            return
        cut = self._flap_cuts.pop(victim, None)
        if cut is not None:
            self.network.heal_partition(cut)
        else:
            others = [e for e in self.network.endpoints() if e != victim]
            self._flap_cuts[victim] = self.network.partition(
                [victim], others, name=f"flap:{victim}:{self.sim.now:.4f}"
            )
        self.sim.schedule(period / 2.0, self._flap_toggle, victim, period)

    def _end_flap(self, victim: str) -> None:
        if self._flapping.pop(victim, None) is None:
            return
        cut = self._flap_cuts.pop(victim, None)
        if cut is not None:
            self.network.heal_partition(cut)
        self._record(ChaosEvent(self.sim.now, "flapping-link-end", victim))

    def _inject_oneway_partition(self) -> bool:
        if len(self._cuts) >= self.config.max_concurrent_partitions:
            return False
        picked = self._pick_minority()
        if picked is None:
            return False
        minority, majority = picked
        # Coin-flip the blocked direction: the minority's outbound traffic
        # (requests vanish, replies still arrive) or its inbound traffic.
        outbound = self.rng.random() < 0.5
        if outbound:
            name = self.network.partition(
                sorted(minority), majority, symmetric=False
            )
        else:
            name = self.network.partition(
                majority, sorted(minority), symmetric=False
            )
        self._cuts.add(name)
        window = self.rng.uniform(*self.config.partition_window)
        for member in sorted(minority):
            self._gray_fault("oneway_partition", member, window, 1.0)
        self._record(
            ChaosEvent(
                self.sim.now, "oneway-partition", "+".join(sorted(minority)),
                until=self.sim.now + window,
                detail={
                    "minority": sorted(minority),
                    "cut": name,
                    "blocked": "outbound" if outbound else "inbound",
                },
            )
        )
        self.sim.schedule(window, self._heal_cut, name)
        return True

    def _inject_dup_storm(self) -> bool:
        pool = self._serving_pool(self._dup_victims)
        if not pool:
            return False
        victim = self.rng.choice(pool)
        probability = self.rng.uniform(*self.config.dup_probability)
        window = self.rng.uniform(*self.config.dup_window)
        churn = LinkChurn(
            duplicate_probability=probability,
            reorder_probability=probability,
        )
        self._dup_victims.add(victim)
        self.network.set_churn("*", victim, churn)
        self.network.set_churn(victim, "*", churn)
        self._gray_fault("dup_storm", victim, window, probability)
        self._record(
            ChaosEvent(
                self.sim.now, "dup-storm", victim,
                until=self.sim.now + window,
                detail={"probability": round(probability, 3)},
            )
        )
        self.sim.schedule(window, self._end_dup_storm, victim)
        return True

    def _end_dup_storm(self, victim: str) -> None:
        if victim not in self._dup_victims:
            return
        self._dup_victims.discard(victim)
        self.network.clear_churn("*", victim)
        self.network.clear_churn(victim, "*")
        self._record(ChaosEvent(self.sim.now, "dup-storm-end", victim))
