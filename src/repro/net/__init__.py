"""Simulated network substrate.

Stand-in for the 100 Mbps LAN of the paper's testbed: named endpoints
attached to a :class:`~repro.net.network.Network` fabric exchange messages
with sampled link latency, optional loss, partitions, and host crashes.
Hosts (:mod:`repro.net.node`) carry a speed factor so the heterogeneity of
the paper's 300 MHz–1 GHz machines can be modelled, and
:mod:`repro.net.failures` injects crashes, partitions, and transient
overloads at scheduled virtual times.
"""

from repro.net.message import Message
from repro.net.latency import FixedLatency, LanLatency, LatencyModel, WanLatency
from repro.net.network import Endpoint, Network, NetworkError
from repro.net.node import Host
from repro.net.failures import FailureInjector, OverloadWindow

__all__ = [
    "Message",
    "LatencyModel",
    "FixedLatency",
    "LanLatency",
    "WanLatency",
    "Endpoint",
    "Network",
    "NetworkError",
    "Host",
    "FailureInjector",
    "OverloadWindow",
]
