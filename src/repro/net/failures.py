"""Scheduled fault injection.

Experiments inject faults at virtual times: endpoint crashes (with optional
recovery), network partitions, and transient host overloads.  The injector
only *schedules*; the semantics live in :class:`~repro.net.network.Network`
and :class:`~repro.net.node.Host`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.net.network import Network
from repro.net.node import Host


@dataclass(frozen=True)
class OverloadWindow:
    """A transient overload: ``factor``-times slower during [start, end)."""

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid overload window [{self.start}, {self.end})")
        if self.factor < 1.0:
            raise ValueError(f"overload factor must be >= 1, got {self.factor!r}")


class FailureInjector:
    """Schedules crashes, recoveries, partitions, and overloads."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.sim = network.sim
        self.injected: list[str] = []

    def _log(self, text: str) -> None:
        self.injected.append(f"t={self.sim.now:.3f} scheduled {text}")

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------
    def crash_at(
        self,
        time: float,
        endpoint: str,
        recover_at: Optional[float] = None,
        on_crash: Optional[Callable[[], None]] = None,
        on_recover: Optional[Callable[[], None]] = None,
    ) -> None:
        """Crash ``endpoint`` at ``time``; optionally recover later.

        The endpoint must already be attached when the injection is
        *scheduled* — typos in failure scripts fail fast instead of at
        some later virtual time.  Scheduled crashes/recoveries inherit the
        fabric's idempotent semantics: overlapping injections against the
        same endpoint are safe, only real state transitions emit traces
        and run the ``on_crash``/``on_recover`` hooks.
        """
        if endpoint not in self.network.endpoints():
            raise ValueError(f"cannot schedule crash of unknown endpoint {endpoint!r}")

        def do_crash() -> None:
            if self.network.crash(endpoint) and on_crash is not None:
                on_crash()

        def do_recover() -> None:
            if self.network.recover(endpoint) and on_recover is not None:
                on_recover()

        self.sim.schedule_at(time, do_crash)
        self._log(f"crash {endpoint} at {time}")
        if recover_at is not None:
            if recover_at <= time:
                raise ValueError(
                    f"recovery time {recover_at} not after crash time {time}"
                )
            self.sim.schedule_at(recover_at, do_recover)
            self._log(f"recover {endpoint} at {recover_at}")

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition_at(
        self,
        time: float,
        side_a: Iterable[str],
        side_b: Iterable[str],
        heal_at: Optional[float] = None,
    ) -> None:
        side_a = list(side_a)
        side_b = list(side_b)
        self.sim.schedule_at(time, self.network.partition, side_a, side_b)
        self._log(f"partition {side_a}|{side_b} at {time}")
        if heal_at is not None:
            if heal_at <= time:
                raise ValueError(f"heal time {heal_at} not after cut time {time}")
            self.sim.schedule_at(heal_at, self.network.heal_partitions)
            self._log(f"heal at {heal_at}")

    # ------------------------------------------------------------------
    # Transient overloads
    # ------------------------------------------------------------------
    def overload(self, host: Host, window: OverloadWindow) -> None:
        self.sim.schedule_at(window.start, host.begin_overload, window.factor)
        self.sim.schedule_at(window.end, host.end_overload)
        self._log(
            f"overload {host.name} x{window.factor} during "
            f"[{window.start}, {window.end})"
        )
